package store

import (
	"math"
	"sort"
)

// Filter restricts a query to matching rows. Zero values mean "any".
type Filter struct {
	Cluster string
	User    string
	App     string
	Science string
	Status  string
	// MinSamples excludes jobs with fewer monitor intervals; the paper
	// analyzes only jobs longer than the 10-minute sampling interval.
	MinSamples int
	// Time window on job end (unix seconds); 0 means unbounded.
	EndAfter  int64
	EndBefore int64
}

// compiledFilter is a Filter resolved against the store's dictionaries:
// string predicates become uint32 code comparisons, so the scan loop
// never touches string data. impossible marks a filter naming a string
// value absent from its dictionary (no row can match); allRows marks a
// filter every row provably passes (each predicate vacuous), which lets
// the kernels skip materializing a row-index list entirely.
type compiledFilter struct {
	cluster, user, app, science, status int64 // dict code, or -1 for "any"
	minSamples                          int32
	endAfter, endBefore                 int64
	impossible                          bool
	allRows                             bool
}

// compileDict resolves one string predicate: -1 for "any", the code
// when present, impossible when the value is unknown. vacuous reports
// whether the predicate passes every row.
func compileDict(d *DictColumn, val string, n int) (code int64, impossible, vacuous bool) {
	if val == "" {
		return -1, false, true
	}
	c, ok := d.code(val)
	if !ok {
		return 0, true, false
	}
	return int64(c), false, d.counts[c] == n
}

// compile resolves f against the store's dictionaries and bounds.
func (s *Store) compile(f Filter) compiledFilter {
	n := s.Len()
	cf := compiledFilter{
		minSamples: int32(f.MinSamples),
		endAfter:   f.EndAfter,
		endBefore:  f.EndBefore,
	}
	vacuous := true
	resolve := func(d *DictColumn, val string) int64 {
		code, imp, vac := compileDict(d, val, n)
		cf.impossible = cf.impossible || imp
		vacuous = vacuous && vac
		return code
	}
	cf.cluster = resolve(&s.c.Cluster, f.Cluster)
	cf.user = resolve(&s.c.User, f.User)
	cf.app = resolve(&s.c.App, f.App)
	cf.science = resolve(&s.c.Science, f.Science)
	cf.status = resolve(&s.c.Status, f.Status)
	if f.MinSamples > 0 && (n == 0 || int32(f.MinSamples) > s.c.minSamples) {
		vacuous = false
	}
	if f.EndAfter != 0 && (n == 0 || f.EndAfter > s.c.minEnd) {
		vacuous = false
	}
	if f.EndBefore != 0 && (n == 0 || f.EndBefore <= s.c.maxEnd) {
		vacuous = false
	}
	cf.allRows = vacuous && !cf.impossible && n > 0
	return cf
}

// matchCompiled reports whether row i passes the compiled filter.
func (s *Store) matchCompiled(i int, cf *compiledFilter) bool {
	c := &s.c
	switch {
	case cf.cluster >= 0 && int64(c.Cluster.Codes[i]) != cf.cluster:
		return false
	case cf.user >= 0 && int64(c.User.Codes[i]) != cf.user:
		return false
	case cf.app >= 0 && int64(c.App.Codes[i]) != cf.app:
		return false
	case cf.science >= 0 && int64(c.Science.Codes[i]) != cf.science:
		return false
	case cf.status >= 0 && int64(c.Status.Codes[i]) != cf.status:
		return false
	case cf.minSamples > 0 && c.Samples[i] < cf.minSamples:
		return false
	case cf.endAfter != 0 && c.End[i] < cf.endAfter:
		return false
	case cf.endBefore != 0 && c.End[i] >= cf.endBefore:
		return false
	}
	return true
}

// match reports whether row i passes the filter. Kept as the one-off
// entry point; scans compile the filter once instead.
func (s *Store) match(i int, f Filter) bool {
	cf := s.compile(f)
	if cf.impossible {
		return false
	}
	return s.matchCompiled(i, &cf)
}

// rowSet is the internal result of a selection: either an implicit
// "all n rows" (no materialized index — the broad-scan fast path) or an
// explicit ascending row-id list. Both enumerate rows in the same
// ascending order, so kernels consuming either form accumulate in
// identical order and produce bit-identical aggregates.
type rowSet struct {
	all bool
	n   int     // row count when all
	idx []int32 // ascending rows otherwise
}

func (rs rowSet) len() int {
	if rs.all {
		return rs.n
	}
	return len(rs.idx)
}

// row returns the j'th selected row id.
func (rs rowSet) row(j int) int {
	if rs.all {
		return j
	}
	return int(rs.idx[j])
}

// selectSet evaluates the filter into a rowSet: a provably vacuous
// filter yields the implicit all-rows set with no allocation; an
// indexed store narrows through the shortest posting list; otherwise a
// compiled columnar scan materializes the ascending row list.
func (s *Store) selectSet(f Filter) rowSet {
	cf := s.compile(f)
	if cf.impossible {
		return rowSet{}
	}
	if cf.allRows {
		return rowSet{all: true, n: s.Len()}
	}
	if s.idx != nil {
		if best, ok := s.idx.narrowest(f); ok {
			idx := make([]int32, 0, len(best))
			for _, i := range best {
				if s.matchCompiled(int(i), &cf) {
					idx = append(idx, i)
				}
			}
			return rowSet{idx: idx}
		}
	}
	return rowSet{idx: s.scanCompiled(&cf)}
}

// scanCompiled is the full-scan arm over the compiled filter.
func (s *Store) scanCompiled(cf *compiledFilter) []int32 {
	var idx []int32
	for i, n := 0, s.Len(); i < n; i++ {
		if s.matchCompiled(i, cf) {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// Select returns the row indices passing the filter, ascending. With
// an index built (BuildIndex) and an equality predicate on an indexed
// column, the candidates come from the narrowest posting list instead
// of a full scan; the result is identical either way.
func (s *Store) Select(f Filter) []int {
	rs := s.selectSet(f)
	if rs.len() == 0 {
		return nil
	}
	idx := make([]int, rs.len())
	for j := range idx {
		idx[j] = rs.row(j)
	}
	return idx
}

// SelectScan is the always-scan path, kept exported as the reference
// implementation the index equivalence tests and benchmarks compare
// against.
func (s *Store) SelectScan(f Filter) []int {
	var idx []int
	cf := s.compile(f)
	if cf.impossible {
		return nil
	}
	for i := 0; i < s.Len(); i++ {
		if s.matchCompiled(i, &cf) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Records returns materialized records passing the filter.
func (s *Store) Records(f Filter) []JobRecord {
	rs := s.selectSet(f)
	out := make([]JobRecord, rs.len())
	for j := range out {
		out[j] = s.Record(rs.row(j))
	}
	return out
}

// Agg is a weighted aggregate of one metric over a row set.
type Agg struct {
	N         int
	NodeHours float64
	Mean      float64 // node-hour weighted
	StdDev    float64 // node-hour weighted population sd
	Min, Max  float64
	// UnweightedMean is the plain per-job mean, kept for the ablation
	// benchmark comparing weighted vs unweighted statistics.
	UnweightedMean float64
}

// Aggregate computes the node-hour-weighted aggregate of metric m over
// rows passing the filter, accumulating strictly in ascending row
// order (the sequential reference the chunked parallel kernel's
// equivalence tests compare against).
func (s *Store) Aggregate(m Metric, f Filter) Agg {
	col := s.col(m)
	weight := s.c.weight
	agg := Agg{Min: math.Inf(1), Max: math.Inf(-1)}
	var sw, swx, plain float64
	rs := s.selectSet(f)
	n := rs.len()
	if rs.all {
		// Columnar fast path: no row-index indirection, two contiguous
		// streams. Same accumulation order as the indirect loop below.
		for i := 0; i < n; i++ {
			w := weight[i]
			v := col[i]
			sw += w
			swx += w * v
			plain += v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
	} else {
		for _, i := range rs.idx {
			w := weight[i]
			v := col[i]
			sw += w
			swx += w * v
			plain += v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
	}
	agg.N = n
	agg.NodeHours = sw
	if agg.N == 0 {
		agg.Mean, agg.StdDev, agg.Min, agg.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		agg.UnweightedMean = math.NaN()
		return agg
	}
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	var ss float64
	if rs.all {
		for i := 0; i < n; i++ {
			d := col[i] - agg.Mean
			ss += weight[i] * d * d
		}
	} else {
		for _, i := range rs.idx {
			d := col[i] - agg.Mean
			ss += weight[i] * d * d
		}
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// GroupKey selects the grouping dimension.
type GroupKey int

// Grouping dimensions.
const (
	ByUser GroupKey = iota
	ByApp
	ByScience
	ByCluster
	ByStatus
)

// keyColumn returns the dictionary column behind a grouping dimension.
func (s *Store) keyColumn(k GroupKey) *DictColumn {
	switch k {
	case ByUser:
		return &s.c.User
	case ByApp:
		return &s.c.App
	case ByScience:
		return &s.c.Science
	case ByCluster:
		return &s.c.Cluster
	case ByStatus:
		return &s.c.Status
	default:
		return nil
	}
}

// Group is one group-by bucket.
type Group struct {
	Key       string
	N         int
	NodeHours float64
	// Mean holds the node-hour-weighted mean of each requested metric.
	Mean map[Metric]float64
}

// GroupBy computes node-hour-weighted means of the metrics per group,
// over rows passing the filter, sorted by descending node-hours. The
// grouping runs over dictionary codes — one flat accumulator slot per
// distinct value — instead of a string-keyed map.
func (s *Store) GroupBy(k GroupKey, metrics []Metric, f Filter) []Group {
	kc := s.keyColumn(k)
	if kc == nil {
		// Unknown dimension: one empty-keyed group over the selection,
		// matching the old key(i)=="" behavior.
		return s.groupByEmptyKey(metrics, f)
	}
	type acc struct {
		n   int
		sw  float64
		swx []float64 // parallel to metrics
	}
	accs := make([]acc, len(kc.Values))
	rs := s.selectSet(f)
	cols := make([][]float64, len(metrics))
	for j, m := range metrics {
		cols[j] = s.col(m)
	}
	for j, n := 0, rs.len(); j < n; j++ {
		i := rs.row(j)
		a := &accs[kc.Codes[i]]
		if a.swx == nil {
			a.swx = make([]float64, len(metrics))
		}
		w := s.c.weight[i]
		a.n++
		a.sw += w
		for mj, col := range cols {
			a.swx[mj] += w * col[i]
		}
	}
	out := make([]Group, 0, len(accs))
	for code := range accs {
		a := &accs[code]
		if a.n == 0 {
			continue
		}
		g := Group{Key: kc.Values[code], N: a.n, NodeHours: a.sw, Mean: make(map[Metric]float64)}
		for mj, m := range metrics {
			if a.sw > 0 {
				g.Mean[m] = a.swx[mj] / a.sw
			} else {
				g.Mean[m] = math.NaN()
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// groupByEmptyKey handles an out-of-range GroupKey: every selected row
// lands in the "" bucket.
func (s *Store) groupByEmptyKey(metrics []Metric, f Filter) []Group {
	rs := s.selectSet(f)
	if rs.len() == 0 {
		return []Group{}
	}
	g := Group{Key: "", N: rs.len(), Mean: make(map[Metric]float64)}
	swx := make([]float64, len(metrics))
	for j, n := 0, rs.len(); j < n; j++ {
		i := rs.row(j)
		w := s.c.weight[i]
		g.NodeHours += w
		for mj, m := range metrics {
			swx[mj] += w * s.col(m)[i]
		}
	}
	for mj, m := range metrics {
		if g.NodeHours > 0 {
			g.Mean[m] = swx[mj] / g.NodeHours
		} else {
			g.Mean[m] = math.NaN()
		}
	}
	return []Group{g}
}

// Values extracts metric m for rows passing the filter, paired with
// node-hour weights (for weighted statistics and KDE inputs).
func (s *Store) Values(m Metric, f Filter) (vals, weights []float64) {
	col := s.col(m)
	rs := s.selectSet(f)
	n := rs.len()
	if n == 0 {
		return nil, nil
	}
	vals = make([]float64, n)
	weights = make([]float64, n)
	if rs.all {
		copy(vals, col[:n])
		copy(weights, s.c.weight[:n])
		return vals, weights
	}
	for j, i := range rs.idx {
		vals[j] = col[i]
		weights[j] = s.c.weight[i]
	}
	return vals, weights
}

// TotalNodeHours sums weights over the filtered rows.
func (s *Store) TotalNodeHours(f Filter) float64 {
	var sw float64
	rs := s.selectSet(f)
	if rs.all {
		for _, w := range s.c.weight[:rs.n] {
			sw += w
		}
		return sw
	}
	for _, i := range rs.idx {
		sw += s.c.weight[i]
	}
	return sw
}

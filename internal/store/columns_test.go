package store

import (
	"math"
	"runtime"
	"testing"
)

// ---- the pre-columnar row path, kept verbatim as the reference ----
//
// baselineAggregate* reimplement the row-oriented execution engine the
// columnar kernels replaced: string-compare filtering, a materialized
// []int row list, and node-hours recomputed per row from three columns.
// The equivalence tests require the columnar kernels to be bit-identical
// to this path; the speedup floor tests require them to beat it.

func (s *Store) baselineMatch(i int, f Filter) bool {
	switch {
	case f.Cluster != "" && s.c.Cluster.value(i) != f.Cluster:
		return false
	case f.User != "" && s.c.User.value(i) != f.User:
		return false
	case f.App != "" && s.c.App.value(i) != f.App:
		return false
	case f.Science != "" && s.c.Science.value(i) != f.Science:
		return false
	case f.Status != "" && s.c.Status.value(i) != f.Status:
		return false
	case f.MinSamples > 0 && int(s.c.Samples[i]) < f.MinSamples:
		return false
	case f.EndAfter != 0 && s.c.End[i] < f.EndAfter:
		return false
	case f.EndBefore != 0 && s.c.End[i] >= f.EndBefore:
		return false
	}
	return true
}

func (s *Store) baselineSelect(f Filter) []int {
	if s.idx != nil {
		if best, ok := s.idx.narrowest(f); ok {
			idx := make([]int, 0, len(best))
			for _, i := range best {
				if s.baselineMatch(int(i), f) {
					idx = append(idx, int(i))
				}
			}
			if len(idx) == 0 {
				return nil
			}
			return idx
		}
	}
	var idx []int
	for i := 0; i < s.Len(); i++ {
		if s.baselineMatch(i, f) {
			idx = append(idx, i)
		}
	}
	return idx
}

func (s *Store) baselineNodeHours(i int) float64 {
	return float64(int(s.c.Nodes[i])) * float64(s.c.End[i]-s.c.Start[i]) / 3600
}

// baselineAggregate is the old sequential Aggregate.
func (s *Store) baselineAggregate(m Metric, f Filter) Agg {
	col := s.col(m)
	agg := Agg{Min: math.Inf(1), Max: math.Inf(-1)}
	var sw, swx, plain float64
	idx := s.baselineSelect(f)
	for _, i := range idx {
		w := s.baselineNodeHours(i)
		v := col[i]
		sw += w
		swx += w * v
		plain += v
		if v < agg.Min {
			agg.Min = v
		}
		if v > agg.Max {
			agg.Max = v
		}
	}
	agg.N = len(idx)
	agg.NodeHours = sw
	if agg.N == 0 {
		agg.Mean, agg.StdDev, agg.Min, agg.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		agg.UnweightedMean = math.NaN()
		return agg
	}
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	var ss float64
	for _, i := range idx {
		d := col[i] - agg.Mean
		ss += s.baselineNodeHours(i) * d * d
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// baselineAggregateParallel is the old chunk-merged parallel kernel over
// a materialized []int selection.
func (s *Store) baselineAggregateParallel(m Metric, f Filter, workers int) Agg {
	idx := s.baselineSelect(f)
	col := s.col(m)
	agg := Agg{N: len(idx)}
	if agg.N == 0 {
		nan := math.NaN()
		return Agg{Mean: nan, StdDev: nan, Min: nan, Max: nan, UnweightedMean: nan}
	}
	chunks := (len(idx) + aggChunk - 1) / aggChunk
	partials := make([]aggPartial, chunks)
	runChunks(nil, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > len(idx) {
			hi = len(idx)
		}
		p := aggPartial{min: col[idx[lo]], max: col[idx[lo]]}
		for _, i := range idx[lo:hi] {
			w := s.baselineNodeHours(i)
			v := col[i]
			p.sw += w
			p.swx += w * v
			p.plain += v
			if v < p.min {
				p.min = v
			}
			if v > p.max {
				p.max = v
			}
		}
		partials[c] = p
	})
	var sw, swx, plain float64
	agg.Min, agg.Max = partials[0].min, partials[0].max
	for _, p := range partials {
		sw += p.sw
		swx += p.swx
		plain += p.plain
		if p.min < agg.Min {
			agg.Min = p.min
		}
		if p.max > agg.Max {
			agg.Max = p.max
		}
	}
	agg.NodeHours = sw
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	mean := agg.Mean
	runChunks(nil, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > len(idx) {
			hi = len(idx)
		}
		var ss float64
		for _, i := range idx[lo:hi] {
			d := col[i] - mean
			ss += s.baselineNodeHours(i) * d * d
		}
		partials[c].ss = ss
	})
	var ss float64
	for _, p := range partials {
		ss += p.ss
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// equivStore builds a store exercising the tricky aggregation inputs:
// NaN metric values, zero-sample jobs, zero-node-hour jobs (end ==
// start), negative values, enough rows to span multiple 4096-row
// chunks, and enough distinct strings to stress the dictionaries.
func equivStore(n int) *Store {
	st := New()
	apps := []string{"namd", "amber", "gromacs", "wrf", "hpl", "charmm", "vasp"}
	for i := 0; i < n; i++ {
		r := JobRecord{
			JobID:   int64(1000 + i),
			Cluster: []string{"ranger", "lonestar4"}[i%2],
			User:    "u" + string(rune('a'+i%23)),
			App:     apps[i%len(apps)],
			Science: []string{"Chemistry", "Physics", "Biology", ""}[i%4],
			Nodes:   i % 64, // includes zero-node rows
			Submit:  int64(50 * i),
			Start:   int64(50*i + 30),
			End:     int64(50*i+30) + 600*int64(i%7), // i%7==0 → zero wallclock
			Status:  []string{"completed", "failed"}[i%5/4],
			Samples: i % 5, // includes zero-sample rows
		}
		r.CPUIdleFrac = float64(i%100) / 100
		r.MemUsedGB = float64(i % 31)
		r.FlopsGF = 0.3 * float64(i%13)
		r.ReadMB = -1.5 * float64(i%9) // negative values
		if i%97 == 0 {
			r.FlopsGF = math.NaN() // NaN metric values
		}
		if i%89 == 0 {
			r.MemUsedGB = math.Inf(1)
		}
		st.Add(r)
	}
	return st
}

func aggBitsEqual(a, b Agg) bool {
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.N == b.N && feq(a.NodeHours, b.NodeHours) && feq(a.Mean, b.Mean) &&
		feq(a.StdDev, b.StdDev) && feq(a.Min, b.Min) && feq(a.Max, b.Max) &&
		feq(a.UnweightedMean, b.UnweightedMean)
}

var equivFilters = []Filter{
	{},                                      // all rows, vacuous
	{Cluster: "ranger"},                     // posting-list selective
	{Cluster: "ranger", MinSamples: 1},      // broad-scan shape
	{User: "ub", App: "amber"},              // narrow intersection
	{Science: "Physics", MinSamples: 3},     // scan with residual filter
	{Status: "failed"},                      // low-count dictionary value
	{EndAfter: 5000, EndBefore: 200000},     // time window
	{Cluster: "nonesuch"},                   // impossible value
	{App: "hpl", EndBefore: 1},              // empty result via window
	{MinSamples: 10},                        // empty result via samples
	{Cluster: "ranger", User: "uc", App: "namd", Science: "Chemistry", Status: "completed", MinSamples: 1, EndAfter: 1, EndBefore: 1 << 40}, // every predicate at once
}

// TestColumnarAggregateEquivalence proves the columnar kernels are
// bit-identical to the retired row path — sequential and chunk-merged,
// indexed and unindexed, for every worker count, including NaN metric
// values, zero-sample jobs and zero-node-hour jobs.
func TestColumnarAggregateEquivalence(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		st := equivStore(10_000)
		if indexed {
			st.BuildIndex()
		}
		for _, m := range []Metric{MetricFlops, MetricMemUsed, MetricRead, MetricCPUIdle} {
			for fi, f := range equivFilters {
				want := st.baselineAggregate(m, f)
				if got := st.Aggregate(m, f); !aggBitsEqual(got, want) {
					t.Errorf("indexed=%v filter#%d %s: Aggregate %+v != baseline %+v", indexed, fi, m, got, want)
				}
				for _, workers := range []int{1, 2, 3, 8} {
					wantP := st.baselineAggregateParallel(m, f, workers)
					if got := st.AggregateParallel(m, f, workers); !aggBitsEqual(got, wantP) {
						t.Errorf("indexed=%v filter#%d %s workers=%d: AggregateParallel %+v != baseline %+v",
							indexed, fi, m, workers, got, wantP)
					}
				}
			}
		}
	}
}

// TestColumnarSelectEquivalence pins Select/SelectScan (and therefore
// every kernel's row enumeration) to the baseline string-compare scan.
func TestColumnarSelectEquivalence(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		st := equivStore(5_000)
		if indexed {
			st.BuildIndex()
		}
		for fi, f := range equivFilters {
			want := st.baselineSelect(f)
			for name, got := range map[string][]int{"Select": st.Select(f), "SelectScan": st.SelectScan(f)} {
				if len(got) != len(want) {
					t.Errorf("indexed=%v filter#%d %s: %d rows != baseline %d", indexed, fi, name, len(got), len(want))
					continue
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("indexed=%v filter#%d %s: row[%d]=%d != baseline %d", indexed, fi, name, j, got[j], want[j])
						break
					}
				}
			}
		}
	}
}

// TestAggregateParallelWorkerInvariance re-pins the daemon's core
// determinism property on the columnar kernels: any worker count, same
// bits.
func TestAggregateParallelWorkerInvariance(t *testing.T) {
	st := equivStore(20_000)
	st.BuildIndex()
	for _, f := range equivFilters {
		want := st.AggregateParallel(MetricFlops, f, 1)
		for workers := 2; workers <= 9; workers++ {
			if got := st.AggregateParallel(MetricFlops, f, workers); !aggBitsEqual(got, want) {
				t.Fatalf("workers=%d: %+v != workers=1 %+v (filter %+v)", workers, got, want, f)
			}
		}
	}
}

// TestColumnarSpeedupFloor is the executable form of the acceptance
// criterion: the columnar broad-scan kernel (vacuous-filter shape, the
// store-indexed-broad benchmark) must be at least 2x faster than the
// retired row path on a 100k-job store. The typical measurement is
// ~4x; the floor is set low enough that scheduler noise cannot flake
// it.
func TestColumnarSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row timing comparison in -short mode")
	}
	st := floorStore(100_000)
	st.BuildIndex()
	broad := Filter{Cluster: "ranger", MinSamples: 1}
	workers := runtime.GOMAXPROCS(0)
	if got, want := st.AggregateParallel(MetricFlops, broad, workers), st.baselineAggregateParallel(MetricFlops, broad, workers); !aggBitsEqual(got, want) {
		t.Fatalf("columnar %+v != baseline %+v", got, want)
	}
	base := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = st.baselineAggregateParallel(MetricFlops, broad, workers)
		}
	})
	columnar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(MetricFlops, broad, workers)
		}
	})
	ratio := float64(base.NsPerOp()) / float64(columnar.NsPerOp())
	t.Logf("row path %v/op, columnar %v/op, speedup %.1fx", base.NsPerOp(), columnar.NsPerOp(), ratio)
	if ratio < 2 {
		t.Errorf("columnar broad-scan aggregate only %.1fx faster than the row path, want >= 2x", ratio)
	}
}

// floorStore mirrors the serve benchmark's 100k-job corpus shape (one
// cluster, 500 users, six apps).
func floorStore(n int) *Store {
	st := New()
	apps := []string{"namd", "amber", "gromacs", "wrf", "hpl", "charmm"}
	users := make([]string, 500)
	for u := range users {
		users[u] = "u" + string(rune('0'+u/100)) + string(rune('0'+u/10%10)) + string(rune('0'+u%10))
	}
	for i := 0; i < n; i++ {
		r := JobRecord{
			JobID:   int64(100 + i),
			Cluster: "ranger",
			User:    users[i%len(users)],
			App:     apps[i%len(apps)],
			Science: []string{"Chemistry", "Physics", "Biology"}[i%3],
			Nodes:   1 + i%64,
			Submit:  int64(100 * i),
			Start:   int64(100*i + 60),
			End:     int64(100*i+60) + 1800*(1+int64(i%8)),
			Status:  "completed",
			Samples: 1 + i%5,
		}
		r.CPUIdleFrac = float64(i%100) / 100
		r.MemUsedGB = float64(i % 29)
		r.FlopsGF = 0.7 * float64(i%17)
		st.Add(r)
	}
	return st
}

// BenchmarkAggregateColumnar is the committed columnar-kernel benchmark
// (make bench-store): the broad vacuous-filter sweep and the selective
// posting-list path, against the retired row-path baseline.
func BenchmarkAggregateColumnar(b *testing.B) {
	st := floorStore(100_000)
	st.BuildIndex()
	broad := Filter{Cluster: "ranger", MinSamples: 1}
	selective := Filter{Cluster: "ranger", User: "u042", MinSamples: 1}
	workers := runtime.GOMAXPROCS(0)
	b.Run("broad-columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(MetricFlops, broad, workers)
		}
	})
	b.Run("broad-rowpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.baselineAggregateParallel(MetricFlops, broad, workers)
		}
	})
	b.Run("selective-columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(MetricFlops, selective, workers)
		}
	})
	b.Run("selective-rowpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.baselineAggregateParallel(MetricFlops, selective, workers)
		}
	})
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// AtomicWriteFile lands a file at dir/name so that a reader — most
// importantly supremmd's poll-reload — never observes a partial write,
// and a crash at any point never loses an already-visible file:
//
//  1. the bytes are written to a hidden temp file in the same
//     directory (rename only works within a filesystem);
//  2. the temp file is fsynced, so the rename can never expose data
//     the kernel has not flushed;
//  3. the temp file is renamed over the target — the atomic step;
//  4. the parent directory is fsynced, so a crash right after the
//     rename cannot roll the directory entry back to the old file
//     (rename durability is a property of the directory, not the
//     file — fsyncing only the file leaves the new name unflushed).
//
// write receives the open temp file and streams the payload into it
// (the cmd/ingest outputs are written by encoder callbacks, not from
// in-memory byte slices). On any failure the target is left untouched
// and the temp file is removed.
func AtomicWriteFile(dir, name string, write func(f *os.File) error) error {
	f, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		_ = f.Close() // write error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // sync error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		_ = f.Close() // chmod error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return FsyncDir(dir)
}

// AtomicWriteBytes is AtomicWriteFile for an in-memory payload.
func AtomicWriteBytes(dir, name string, data []byte) error {
	return AtomicWriteFile(dir, name, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// FsyncDir flushes a directory's entry table, making completed renames
// inside it durable. Filesystems that reject fsync on a directory
// handle (some network mounts) report EINVAL/ENOTSUP; that is the
// platform telling us directory syncs are meaningless there, not a
// failed write, so it is not surfaced as an error.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		return serr
	}
	return cerr
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary snapshot format ("jobs.supremm", DESIGN.md §11).
//
// The file is a direct little-endian serialization of Columns: a fixed
// header followed by one length-prefixed, CRC32-guarded block per
// column, in a fixed canonical order. Numeric columns are raw value
// arrays; string columns are a dictionary (each distinct value once,
// in first-appearance order) plus one uint32 code per row. Decoding
// never trusts a declared length without checking it against the bytes
// actually present, so a hostile file cannot drive allocations past its
// own size, and any structural damage (truncation, bit flips, trailing
// garbage) is an error — never a panic, never a silently wrong store.
//
// Versioning: the major version is part of the header; readers reject
// any version they do not know. New columns get new block ids and a
// version bump; v1 requires exactly the 23 known blocks in canonical
// order, which also makes encode→decode→encode byte-stable.

const (
	// codecMagic opens every snapshot file.
	codecMagic = "SUPRMMC1"
	// codecVersion is the current (and only) format version.
	codecVersion = 1
	// codecHeaderLen is magic + version + flags + row count.
	codecHeaderLen = 8 + 4 + 4 + 8
	// blockHeaderLen is id + payload length + payload CRC32.
	blockHeaderLen = 4 + 8 + 4
	// numBlocks is the fixed v1 block count: 5 int64/int32 identity
	// columns + job id + 5 dictionary columns + 12 metric columns.
	numBlocks = 11 + NumMetrics
)

// Block ids, in the canonical file order.
const (
	blockJobID   = 1
	blockCluster = 2
	blockUser    = 3
	blockApp     = 4
	blockScience = 5
	blockStatus  = 6
	blockNodes   = 7
	blockSubmit  = 8
	blockStart   = 9
	blockEnd     = 10
	blockSamples = 11
	blockMetric0 = 12 // metric k is block blockMetric0+k, AllMetrics order
)

// EncodeColumns serializes the columnar layout into the binary snapshot
// format. The output is a pure function of the serialized fields
// (dictionaries in first-appearance order, codes, numeric columns), so
// encoding the decode of an encode reproduces the bytes exactly.
func EncodeColumns(c *Columns) []byte {
	n := c.Len()
	buf := make([]byte, 0, codecHeaderLen+numBlocks*blockHeaderLen+n*(8*4+4*7)+dictBytes(c))
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // flags, reserved
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))

	buf = appendBlock(buf, blockJobID, encodeInt64s(c.JobID))
	buf = appendBlock(buf, blockCluster, encodeDict(&c.Cluster))
	buf = appendBlock(buf, blockUser, encodeDict(&c.User))
	buf = appendBlock(buf, blockApp, encodeDict(&c.App))
	buf = appendBlock(buf, blockScience, encodeDict(&c.Science))
	buf = appendBlock(buf, blockStatus, encodeDict(&c.Status))
	buf = appendBlock(buf, blockNodes, encodeInt32s(c.Nodes))
	buf = appendBlock(buf, blockSubmit, encodeInt64s(c.Submit))
	buf = appendBlock(buf, blockStart, encodeInt64s(c.Start))
	buf = appendBlock(buf, blockEnd, encodeInt64s(c.End))
	buf = appendBlock(buf, blockSamples, encodeInt32s(c.Samples))
	for k := 0; k < NumMetrics; k++ {
		buf = appendBlock(buf, uint32(blockMetric0+k), encodeFloat64s(c.Metrics[k]))
	}
	return buf
}

// dictBytes estimates the dictionary payload size for the encode
// buffer's capacity hint.
func dictBytes(c *Columns) int {
	total := 0
	for _, d := range []*DictColumn{&c.Cluster, &c.User, &c.App, &c.Science, &c.Status} {
		total += 4
		for _, v := range d.Values {
			total += 4 + len(v)
		}
	}
	return total
}

func appendBlock(buf []byte, id uint32, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

func encodeInt64s(col []int64) []byte {
	out := make([]byte, 0, len(col)*8)
	for _, v := range col {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

func encodeInt32s(col []int32) []byte {
	out := make([]byte, 0, len(col)*4)
	for _, v := range col {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

func encodeFloat64s(col []float64) []byte {
	out := make([]byte, 0, len(col)*8)
	for _, v := range col {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func encodeDict(d *DictColumn) []byte {
	size := 4
	for _, v := range d.Values {
		size += 4 + len(v)
	}
	out := make([]byte, 0, size+len(d.Codes)*4)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(d.Values)))
	for _, v := range d.Values {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	for _, c := range d.Codes {
		out = binary.LittleEndian.AppendUint32(out, c)
	}
	return out
}

// decoder walks the snapshot bytes with strict bounds checking; every
// take is validated against the remaining length before any slice or
// allocation is derived from it.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

// take returns the next n input bytes after bounds-checking n against
// what remains.
//
// supremmlint:untrusted — the returned bytes are raw input.
func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, fmt.Errorf("store: snapshot truncated at offset %d (need %d bytes, have %d)", d.off, n, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

// uint32 decodes the next little-endian u32.
//
// supremmlint:untrusted — the result comes straight from input bytes
// and must be bounds-checked before sizing anything.
func (d *decoder) uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// uint64 decodes the next little-endian u64.
//
// supremmlint:untrusted — the result comes straight from input bytes
// and must be bounds-checked before sizing anything.
func (d *decoder) uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// block reads one block header and returns the checksum-verified
// payload for the expected block id.
func (d *decoder) block(wantID uint32) ([]byte, error) {
	id, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if id != wantID {
		return nil, fmt.Errorf("store: snapshot block %d out of order (want %d)", id, wantID)
	}
	length, err := d.uint64()
	if err != nil {
		return nil, err
	}
	sum, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if length > uint64(d.remaining()) {
		return nil, fmt.Errorf("store: snapshot block %d claims %d payload bytes, only %d remain", id, length, d.remaining())
	}
	payload, err := d.take(int(length))
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("store: snapshot block %d checksum mismatch (%08x != %08x)", id, got, sum)
	}
	return payload, nil
}

func decodeInt64s(payload []byte, rows int) ([]int64, error) {
	if len(payload) != rows*8 {
		return nil, fmt.Errorf("store: int64 column payload is %d bytes, want %d", len(payload), rows*8)
	}
	out := make([]int64, rows)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}

func decodeInt32s(payload []byte, rows int) ([]int32, error) {
	if len(payload) != rows*4 {
		return nil, fmt.Errorf("store: int32 column payload is %d bytes, want %d", len(payload), rows*4)
	}
	out := make([]int32, rows)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return out, nil
}

func decodeFloat64s(payload []byte, rows int) ([]float64, error) {
	if len(payload) != rows*8 {
		return nil, fmt.Errorf("store: float64 column payload is %d bytes, want %d", len(payload), rows*8)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}

func decodeDict(payload []byte, rows int) (DictColumn, error) {
	var out DictColumn
	d := decoder{data: payload}
	dictLen, err := d.uint32()
	if err != nil {
		return out, err
	}
	// Each dictionary entry needs at least its 4-byte length prefix and
	// each row a 4-byte code, so dictLen is bounded by the payload
	// itself — checked before allocating.
	if uint64(dictLen)*4+uint64(rows)*4 > uint64(d.remaining()) {
		return out, fmt.Errorf("store: dictionary claims %d values in %d bytes", dictLen, d.remaining())
	}
	out.Values = make([]string, 0, dictLen)
	seen := make(map[string]bool, dictLen)
	for k := uint32(0); k < dictLen; k++ {
		strLen, err := d.uint32()
		if err != nil {
			return out, err
		}
		raw, err := d.take(int(strLen))
		if err != nil {
			return out, err
		}
		v := string(raw) //supremmlint:allow hotalloc: dictionary values are interned once per distinct string, not per row
		if seen[v] {
			// Duplicate dictionary entries never come out of the encoder
			// and would break the one-group-per-code invariant GroupBy
			// relies on.
			return out, fmt.Errorf("store: dictionary value %q appears twice", v)
		}
		seen[v] = true
		out.Values = append(out.Values, v)
	}
	codes, err := d.take(rows * 4)
	if err != nil {
		return out, err
	}
	if d.remaining() != 0 {
		return out, fmt.Errorf("store: dictionary has %d trailing bytes", d.remaining())
	}
	out.Codes = make([]uint32, rows)
	for i := range out.Codes {
		c := binary.LittleEndian.Uint32(codes[i*4:])
		if c >= dictLen {
			return out, fmt.Errorf("store: dictionary code %d out of range (dictionary has %d values)", c, dictLen)
		}
		out.Codes[i] = c
	}
	return out, nil
}

// DecodeColumns parses a binary snapshot produced by EncodeColumns.
// Malformed input of any kind — wrong magic or version, truncated or
// reordered blocks, checksum mismatches, out-of-range codes or lengths,
// trailing bytes — returns an error; decode never panics and never
// allocates more than a small multiple of len(data).
func DecodeColumns(data []byte) (*Columns, error) {
	d := decoder{data: data}
	magic, err := d.take(8)
	if err != nil {
		return nil, err
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("store: not a snapshot file (bad magic %q)", magic)
	}
	version, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("store: snapshot version %d not supported (reader knows %d)", version, codecVersion)
	}
	flags, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if flags != 0 {
		return nil, fmt.Errorf("store: snapshot uses unknown flags %#x", flags)
	}
	rows64, err := d.uint64()
	if err != nil {
		return nil, err
	}
	// Every row costs at least 4 bytes in each of the 11 fixed-width /
	// code arrays, so a row count the remaining bytes cannot hold is
	// structurally invalid — rejected before any allocation.
	if rows64 > uint64(d.remaining())/4 {
		return nil, fmt.Errorf("store: snapshot claims %d rows in %d bytes", rows64, d.remaining())
	}
	rows := int(rows64)

	c := &Columns{}
	if err := decodeBody(&d, c, rows); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after last block", d.remaining())
	}
	c.recomputeDerived()
	return c, nil
}

// decodeBody reads the 23 canonical blocks into c.
func decodeBody(d *decoder, c *Columns, rows int) error {
	var err error
	int64Col := func(id uint32, dst *[]int64) error {
		payload, berr := d.block(id)
		if berr != nil {
			return berr
		}
		*dst, berr = decodeInt64s(payload, rows)
		return berr
	}
	int32Col := func(id uint32, dst *[]int32) error {
		payload, berr := d.block(id)
		if berr != nil {
			return berr
		}
		*dst, berr = decodeInt32s(payload, rows)
		return berr
	}
	dictCol := func(id uint32, dst *DictColumn) error {
		payload, berr := d.block(id)
		if berr != nil {
			return berr
		}
		*dst, berr = decodeDict(payload, rows)
		return berr
	}
	if err = int64Col(blockJobID, &c.JobID); err != nil {
		return err
	}
	if err = dictCol(blockCluster, &c.Cluster); err != nil {
		return err
	}
	if err = dictCol(blockUser, &c.User); err != nil {
		return err
	}
	if err = dictCol(blockApp, &c.App); err != nil {
		return err
	}
	if err = dictCol(blockScience, &c.Science); err != nil {
		return err
	}
	if err = dictCol(blockStatus, &c.Status); err != nil {
		return err
	}
	if err = int32Col(blockNodes, &c.Nodes); err != nil {
		return err
	}
	if err = int64Col(blockSubmit, &c.Submit); err != nil {
		return err
	}
	if err = int64Col(blockStart, &c.Start); err != nil {
		return err
	}
	if err = int64Col(blockEnd, &c.End); err != nil {
		return err
	}
	if err = int32Col(blockSamples, &c.Samples); err != nil {
		return err
	}
	for k := 0; k < NumMetrics; k++ {
		payload, berr := d.block(uint32(blockMetric0 + k))
		if berr != nil {
			return berr
		}
		if c.Metrics[k], berr = decodeFloat64s(payload, rows); berr != nil {
			return berr
		}
	}
	return nil
}

// SaveBinary writes the store as a binary snapshot (jobs.supremm).
func (s *Store) SaveBinary(w io.Writer) error {
	_, err := w.Write(EncodeColumns(&s.c))
	return err
}

// LoadBinary reads a binary snapshot into a store.
func LoadBinary(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: load binary: %w", err)
	}
	c, err := DecodeColumns(data)
	if err != nil {
		return nil, err
	}
	return FromColumns(c), nil
}

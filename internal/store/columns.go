package store

import "math"

// Columns is the struct-of-arrays execution layout of the warehouse:
// one contiguous slice per JobRecord field, with the low-cardinality
// string fields dictionary-encoded (a shared value table plus a uint32
// code per row). The row-oriented JobRecord API (Add, Record, Records)
// remains the compatibility surface; every scan, filter and aggregation
// kernel runs over these slices, and the binary snapshot format
// (codec.go) is a direct serialization of this struct.
type Columns struct {
	JobID   []int64
	Cluster DictColumn
	User    DictColumn
	App     DictColumn
	Science DictColumn
	Status  DictColumn
	Nodes   []int32
	Submit  []int64
	Start   []int64
	End     []int64
	Samples []int32

	// Metrics holds the numeric columns in AllMetrics order.
	Metrics [NumMetrics][]float64

	// weight caches the §4.1 node-hour weight per row. It is derived
	// (recomputed on load, never serialized) with the exact expression
	// nodeHours always used, so cached and recomputed values are
	// bit-identical.
	weight []float64

	// Derived bounds used to prove filter predicates vacuous (see
	// compileFilter): the minimum samples value and the end-time range
	// over all rows. Maintained by appendRecord and recomputeDerived.
	minSamples int32
	minEnd     int64
	maxEnd     int64
}

// NumMetrics is the number of numeric metric columns (AllMetrics).
const NumMetrics = 12

// metricPos maps a metric name to its position in Columns.Metrics and
// in the binary snapshot's column order. Returns -1 for unknown names.
func metricPos(m Metric) int {
	switch m {
	case MetricCPUIdle:
		return 0
	case MetricCPUUser:
		return 1
	case MetricCPUSys:
		return 2
	case MetricMemUsed:
		return 3
	case MetricMemUsedMax:
		return 4
	case MetricFlops:
		return 5
	case MetricScratchWrite:
		return 6
	case MetricWorkWrite:
		return 7
	case MetricRead:
		return 8
	case MetricIBTx:
		return 9
	case MetricIBRx:
		return 10
	case MetricLnetTx:
		return 11
	default:
		return -1
	}
}

// DictColumn is one dictionary-encoded string column: Values holds each
// distinct string once, in first-appearance order; Codes holds one
// index into Values per row. The first-appearance order makes the
// encoding a pure function of the append sequence, which is what keeps
// the binary snapshot byte-stable across encode→decode→encode.
type DictColumn struct {
	Values []string
	Codes  []uint32

	// index maps value → code for O(1) appends and filter compilation.
	// Rebuilt on load; never serialized.
	index map[string]uint32

	// counts[code] is how many rows carry the code, used to prove an
	// equality predicate vacuous (matches every row) without a scan.
	counts []int
}

// append encodes one row's value, growing the dictionary on first
// sight.
func (d *DictColumn) append(v string) {
	if d.index == nil {
		d.index = make(map[string]uint32)
	}
	code, ok := d.index[v]
	if !ok {
		code = uint32(len(d.Values))
		d.Values = append(d.Values, v)
		d.index[v] = code
		d.counts = append(d.counts, 0)
	}
	d.Codes = append(d.Codes, code)
	d.counts[code]++
}

// value decodes row i.
func (d *DictColumn) value(i int) string { return d.Values[d.Codes[i]] }

// code resolves a string to its dictionary code; ok=false means no row
// holds the value.
func (d *DictColumn) code(v string) (uint32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// rebuildIndex reconstructs the derived index and counts from Values
// and Codes (after a binary load, which carries only the serialized
// fields).
func (d *DictColumn) rebuildIndex() {
	d.index = make(map[string]uint32, len(d.Values))
	for i, v := range d.Values {
		d.index[v] = uint32(i)
	}
	d.counts = make([]int, len(d.Values))
	for _, c := range d.Codes {
		d.counts[c]++
	}
}

// appendRecord appends one row across every column, maintaining the
// derived weight and bounds.
func (c *Columns) appendRecord(r JobRecord) {
	c.JobID = append(c.JobID, r.JobID)
	c.Cluster.append(r.Cluster)
	c.User.append(r.User)
	c.App.append(r.App)
	c.Science.append(r.Science)
	c.Status.append(r.Status)
	c.Nodes = append(c.Nodes, int32(r.Nodes))
	c.Submit = append(c.Submit, r.Submit)
	c.Start = append(c.Start, r.Start)
	c.End = append(c.End, r.End)
	c.Samples = append(c.Samples, int32(r.Samples))
	for pos, m := range AllMetrics() {
		c.Metrics[pos] = append(c.Metrics[pos], r.Value(m))
	}
	c.weight = append(c.weight, float64(r.Nodes)*float64(r.End-r.Start)/3600)
	n := len(c.JobID)
	if n == 1 {
		c.minSamples = int32(r.Samples)
		c.minEnd, c.maxEnd = r.End, r.End
		return
	}
	if int32(r.Samples) < c.minSamples {
		c.minSamples = int32(r.Samples)
	}
	if r.End < c.minEnd {
		c.minEnd = r.End
	}
	if r.End > c.maxEnd {
		c.maxEnd = r.End
	}
}

// Len returns the row count.
func (c *Columns) Len() int { return len(c.JobID) }

// recomputeDerived rebuilds every derived field (dictionary indexes,
// the weight cache, the vacuity bounds) from the serialized columns.
// DecodeColumns calls it after a successful structural decode.
func (c *Columns) recomputeDerived() {
	c.Cluster.rebuildIndex()
	c.User.rebuildIndex()
	c.App.rebuildIndex()
	c.Science.rebuildIndex()
	c.Status.rebuildIndex()
	n := c.Len()
	c.weight = make([]float64, n)
	c.minSamples = 0
	c.minEnd, c.maxEnd = 0, 0
	if n > 0 {
		c.minSamples = math.MaxInt32
		c.minEnd, c.maxEnd = math.MaxInt64, math.MinInt64
	}
	for i := 0; i < n; i++ {
		c.weight[i] = float64(int(c.Nodes[i])) * float64(c.End[i]-c.Start[i]) / 3600
		if c.Samples[i] < c.minSamples {
			c.minSamples = c.Samples[i]
		}
		if c.End[i] < c.minEnd {
			c.minEnd = c.End[i]
		}
		if c.End[i] > c.maxEnd {
			c.maxEnd = c.End[i]
		}
	}
}

// record materializes row i back into the compatibility JobRecord.
func (c *Columns) record(i int) JobRecord {
	r := JobRecord{
		JobID: c.JobID[i], Cluster: c.Cluster.value(i), User: c.User.value(i),
		App: c.App.value(i), Science: c.Science.value(i), Nodes: int(c.Nodes[i]),
		Submit: c.Submit[i], Start: c.Start[i], End: c.End[i],
		Status: c.Status.value(i), Samples: int(c.Samples[i]),
	}
	r.CPUIdleFrac = c.Metrics[0][i]
	r.CPUUserFrac = c.Metrics[1][i]
	r.CPUSysFrac = c.Metrics[2][i]
	r.MemUsedGB = c.Metrics[3][i]
	r.MemUsedMaxGB = c.Metrics[4][i]
	r.FlopsGF = c.Metrics[5][i]
	r.ScratchWriteMB = c.Metrics[6][i]
	r.WorkWriteMB = c.Metrics[7][i]
	r.ReadMB = c.Metrics[8][i]
	r.IBTxMB = c.Metrics[9][i]
	r.IBRxMB = c.Metrics[10][i]
	r.LnetTxMB = c.Metrics[11][i]
	return r
}

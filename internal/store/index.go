package store

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Index is the read-optimized secondary-index layer over a Store: one
// posting list of ascending row ids per distinct cluster, user and app
// value. The cluster lists partition the rows — they are the store's
// shards — while the user and app lists accelerate the selective
// filters the query daemon serves. Lists are ascending, so an indexed
// Select returns exactly the row set (and order) a full scan would.
type Index struct {
	cluster postings
	user    postings
	app     postings
	// clusters holds the shard names in sorted order, for deterministic
	// shard iteration.
	clusters []string
}

// postings maps a column value to the ascending row ids holding it.
type postings map[string][]int32

// buildPostings inverts a dictionary column: the per-code row lists are
// sized exactly from the dictionary counts, then keyed by value.
func buildPostings(d *DictColumn) postings {
	lists := make([][]int32, len(d.Values))
	for code, n := range d.counts {
		lists[code] = make([]int32, 0, n)
	}
	for i, code := range d.Codes {
		lists[code] = append(lists[code], int32(i))
	}
	p := make(postings, len(d.Values))
	for code, v := range d.Values {
		p[v] = lists[code]
	}
	return p
}

// BuildIndex (re)builds the secondary indexes over the current rows.
// The store must not be mutated (Add, SortByJobID) or queried from
// other goroutines while the build runs; once built, any number of
// readers may query concurrently. Mutation drops the index, so a
// mutate-then-query sequence falls back to scans rather than serving
// stale postings.
func (s *Store) BuildIndex() {
	idx := &Index{
		cluster: buildPostings(&s.c.Cluster),
		user:    buildPostings(&s.c.User),
		app:     buildPostings(&s.c.App),
	}
	idx.clusters = make([]string, 0, len(idx.cluster))
	for c := range idx.cluster {
		idx.clusters = append(idx.clusters, c)
	}
	sort.Strings(idx.clusters)
	s.idx = idx
}

// HasIndex reports whether the store currently carries an index.
func (s *Store) HasIndex() bool { return s.idx != nil }

// Clusters returns the sorted cluster shard names, or nil when the
// store is unindexed.
func (s *Store) Clusters() []string {
	if s.idx == nil {
		return nil
	}
	return s.idx.clusters
}

// narrowest returns the shortest posting list among the filter's
// equality predicates on indexed columns, or ok=false when the filter
// constrains none of them (a scan is then the only option).
func (ix *Index) narrowest(f Filter) ([]int32, bool) {
	var best []int32
	found := false
	consider := func(p postings, val string) {
		if val == "" {
			return
		}
		list := p[val] // nil for unknown values: empty result
		if !found || len(list) < len(best) {
			best, found = list, true
		}
	}
	consider(ix.cluster, f.Cluster)
	consider(ix.user, f.User)
	consider(ix.app, f.App)
	return best, found
}

// aggChunk is the fixed accumulation granularity of the parallel
// aggregation path. Partials are computed per chunk and merged in chunk
// order, so the result is bit-identical for any worker count — the
// property the daemon's golden responses rely on.
const aggChunk = 4096

// aggPartial is one chunk's running sums.
type aggPartial struct {
	sw, swx, plain float64
	min, max       float64
	ss             float64 // second pass only
}

// AggregateParallel computes the same node-hour-weighted aggregate as
// Aggregate, accumulating in fixed-size chunks fanned out over up to
// workers goroutines. Chunk partials merge in chunk order, so the
// result does not depend on the worker count (only the last-ulp
// rounding differs from the purely sequential Aggregate). workers <= 1
// still uses the chunked accumulation, single-threaded.
//
// Chunks cover 4096 consecutive *selected* rows. When the filter is
// provably vacuous the selection is the implicit 0..n-1 set and the
// kernel runs directly over the contiguous columns — same chunk
// boundaries, same accumulation order, no materialized index.
func (s *Store) AggregateParallel(m Metric, f Filter, workers int) Agg {
	return s.aggregateSet(nil, m, s.selectSet(f), workers)
}

// AggregateParallelCtx is AggregateParallel with cooperative
// cancellation: the chunk scheduler checks ctx between chunks and
// abandons the aggregation once the deadline passes or the caller
// gives up, returning ctx's error instead of a half-summed Agg. On a
// ctx that never fires the result is bit-identical to
// AggregateParallel — the cancellation check never reorders or splits
// chunk accumulation, it only decides whether the next chunk runs.
func (s *Store) AggregateParallelCtx(ctx context.Context, m Metric, f Filter, workers int) (Agg, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	agg := s.aggregateSet(done, m, s.selectSet(f), workers)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Agg{}, err
		}
	}
	return agg, nil
}

// aggregateSet is the chunked kernel over a selection. Both arms (the
// contiguous all-rows sweep and the index-indirect sweep) enumerate the
// same rows in the same order with the same 4096-row chunk partials, so
// they are bit-identical whenever they see the same selection. A
// non-nil done channel requests early abandonment: the partials become
// meaningless and the caller must discard the returned Agg (only
// AggregateParallelCtx passes one, and it checks ctx.Err after).
func (s *Store) aggregateSet(done <-chan struct{}, m Metric, rs rowSet, workers int) Agg {
	col := s.col(m)
	weight := s.c.weight
	n := rs.len()
	agg := Agg{N: n}
	if n == 0 {
		nan := math.NaN()
		return Agg{Mean: nan, StdDev: nan, Min: nan, Max: nan, UnweightedMean: nan}
	}
	chunks := (n + aggChunk - 1) / aggChunk
	partials := make([]aggPartial, chunks)
	runChunks(done, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > n {
			hi = n
		}
		var p aggPartial
		if rs.all {
			p = aggPartial{min: col[lo], max: col[lo]}
			for i := lo; i < hi; i++ {
				w := weight[i]
				v := col[i]
				p.sw += w
				p.swx += w * v
				p.plain += v
				if v < p.min {
					p.min = v
				}
				if v > p.max {
					p.max = v
				}
			}
		} else {
			p = aggPartial{min: col[rs.idx[lo]], max: col[rs.idx[lo]]}
			for _, i := range rs.idx[lo:hi] {
				w := weight[i]
				v := col[i]
				p.sw += w
				p.swx += w * v
				p.plain += v
				if v < p.min {
					p.min = v
				}
				if v > p.max {
					p.max = v
				}
			}
		}
		partials[c] = p
	})
	var sw, swx, plain float64
	agg.Min, agg.Max = partials[0].min, partials[0].max
	for _, p := range partials {
		sw += p.sw
		swx += p.swx
		plain += p.plain
		if p.min < agg.Min {
			agg.Min = p.min
		}
		if p.max > agg.Max {
			agg.Max = p.max
		}
	}
	agg.NodeHours = sw
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	mean := agg.Mean
	runChunks(done, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > n {
			hi = n
		}
		var ss float64
		if rs.all {
			for i := lo; i < hi; i++ {
				d := col[i] - mean
				ss += weight[i] * d * d
			}
		} else {
			for _, i := range rs.idx[lo:hi] {
				d := col[i] - mean
				ss += weight[i] * d * d
			}
		}
		partials[c].ss = ss
	})
	var ss float64
	for _, p := range partials {
		ss += p.ss
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// runChunks executes fn(c) for every chunk index, on up to workers
// goroutines. Chunk assignment is work-stealing (atomic counter) but
// since each chunk writes only its own slot, the outcome is
// deterministic regardless of scheduling. A non-nil done channel is
// polled between chunks: once it fires, no further chunks start
// (chunks already running finish), so a cancelled aggregation stops
// within one chunk's worth of work per worker.
func runChunks(done <-chan struct{}, chunks, workers int, fn func(c int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			if chunkCancelled(done) {
				return
			}
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if chunkCancelled(done) {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// chunkCancelled reports whether done has fired; a nil done never
// cancels and costs only a nil check.
func chunkCancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

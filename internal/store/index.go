package store

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Index is the read-optimized secondary-index layer over a Store: one
// posting list of ascending row ids per distinct cluster, user and app
// value. The cluster lists partition the rows — they are the store's
// shards — while the user and app lists accelerate the selective
// filters the query daemon serves. Lists are ascending, so an indexed
// Select returns exactly the row set (and order) a full scan would.
type Index struct {
	cluster postings
	user    postings
	app     postings
	// clusters holds the shard names in sorted order, for deterministic
	// shard iteration.
	clusters []string
}

// postings maps a column value to the ascending row ids holding it.
type postings map[string][]int32

func buildPostings(col []string) postings {
	p := make(postings)
	for i, v := range col {
		p[v] = append(p[v], int32(i))
	}
	return p
}

// BuildIndex (re)builds the secondary indexes over the current rows.
// The store must not be mutated (Add, SortByJobID) or queried from
// other goroutines while the build runs; once built, any number of
// readers may query concurrently. Mutation drops the index, so a
// mutate-then-query sequence falls back to scans rather than serving
// stale postings.
func (s *Store) BuildIndex() {
	idx := &Index{
		cluster: buildPostings(s.cluster),
		user:    buildPostings(s.user),
		app:     buildPostings(s.app),
	}
	idx.clusters = make([]string, 0, len(idx.cluster))
	for c := range idx.cluster {
		idx.clusters = append(idx.clusters, c)
	}
	sort.Strings(idx.clusters)
	s.idx = idx
}

// HasIndex reports whether the store currently carries an index.
func (s *Store) HasIndex() bool { return s.idx != nil }

// Clusters returns the sorted cluster shard names, or nil when the
// store is unindexed.
func (s *Store) Clusters() []string {
	if s.idx == nil {
		return nil
	}
	return s.idx.clusters
}

// selectIndexed evaluates the filter through the index: the smallest
// applicable posting list supplies the candidates and the full filter
// re-verifies each one, so the result is identical to SelectScan. A
// filter naming a value with no postings short-circuits to empty.
func (s *Store) selectIndexed(f Filter) []int {
	best, ok := s.idx.narrowest(f)
	if !ok {
		return s.SelectScan(f)
	}
	idx := make([]int, 0, len(best))
	for _, i := range best {
		if s.match(int(i), f) {
			idx = append(idx, int(i))
		}
	}
	if len(idx) == 0 {
		return nil // match SelectScan's nil-for-empty
	}
	return idx
}

// narrowest returns the shortest posting list among the filter's
// equality predicates on indexed columns, or ok=false when the filter
// constrains none of them (a scan is then the only option).
func (ix *Index) narrowest(f Filter) ([]int32, bool) {
	var best []int32
	found := false
	consider := func(p postings, val string) {
		if val == "" {
			return
		}
		list := p[val] // nil for unknown values: empty result
		if !found || len(list) < len(best) {
			best, found = list, true
		}
	}
	consider(ix.cluster, f.Cluster)
	consider(ix.user, f.User)
	consider(ix.app, f.App)
	return best, found
}

// aggChunk is the fixed accumulation granularity of the parallel
// aggregation path. Partials are computed per chunk and merged in chunk
// order, so the result is bit-identical for any worker count — the
// property the daemon's golden responses rely on.
const aggChunk = 4096

// aggPartial is one chunk's running sums.
type aggPartial struct {
	sw, swx, plain float64
	min, max       float64
	ss             float64 // second pass only
}

// AggregateParallel computes the same node-hour-weighted aggregate as
// Aggregate, accumulating in fixed-size chunks fanned out over up to
// workers goroutines. Chunk partials merge in chunk order, so the
// result does not depend on the worker count (only the last-ulp
// rounding differs from the purely sequential Aggregate). workers <= 1
// still uses the chunked accumulation, single-threaded.
func (s *Store) AggregateParallel(m Metric, f Filter, workers int) Agg {
	return s.aggregateRows(m, s.Select(f), workers)
}

func (s *Store) aggregateRows(m Metric, idx []int, workers int) Agg {
	col := s.cols[m]
	agg := Agg{N: len(idx)}
	if agg.N == 0 {
		nan := math.NaN()
		return Agg{Mean: nan, StdDev: nan, Min: nan, Max: nan, UnweightedMean: nan}
	}
	chunks := (len(idx) + aggChunk - 1) / aggChunk
	partials := make([]aggPartial, chunks)
	runChunks(chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > len(idx) {
			hi = len(idx)
		}
		p := aggPartial{min: col[idx[lo]], max: col[idx[lo]]}
		for _, i := range idx[lo:hi] {
			w := s.nodeHours(i)
			v := col[i]
			p.sw += w
			p.swx += w * v
			p.plain += v
			if v < p.min {
				p.min = v
			}
			if v > p.max {
				p.max = v
			}
		}
		partials[c] = p
	})
	var sw, swx, plain float64
	agg.Min, agg.Max = partials[0].min, partials[0].max
	for _, p := range partials {
		sw += p.sw
		swx += p.swx
		plain += p.plain
		if p.min < agg.Min {
			agg.Min = p.min
		}
		if p.max > agg.Max {
			agg.Max = p.max
		}
	}
	agg.NodeHours = sw
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	mean := agg.Mean
	runChunks(chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > len(idx) {
			hi = len(idx)
		}
		var ss float64
		for _, i := range idx[lo:hi] {
			d := col[i] - mean
			ss += s.nodeHours(i) * d * d
		}
		partials[c].ss = ss
	})
	var ss float64
	for _, p := range partials {
		ss += p.ss
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// runChunks executes fn(c) for every chunk index, on up to workers
// goroutines. Chunk assignment is work-stealing (atomic counter) but
// since each chunk writes only its own slot, the outcome is
// deterministic regardless of scheduling.
func runChunks(chunks, workers int, fn func(c int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

package store

import (
	"context"
	"math"
	"runtime"
	"sort"
)

// Reader is the query surface shared by the monolithic *Store and the
// time-partitioned *ShardSet. Everything above the store layer (core,
// serve, anomaly) consumes this interface, so the daemon can swap a
// sharded backing in without the analyses noticing: for any shard
// split, every method answers bit-identically to the monolithic store
// holding the same rows in the same global order (see
// TestShardEquivalenceDifferential).
type Reader interface {
	Len() int
	Record(i int) JobRecord
	Records(f Filter) []JobRecord
	Select(f Filter) []int
	Aggregate(m Metric, f Filter) Agg
	AggregateParallel(m Metric, f Filter, workers int) Agg
	AggregateParallelCtx(ctx context.Context, m Metric, f Filter, workers int) (Agg, error)
	GroupBy(k GroupKey, metrics []Metric, f Filter) []Group
	Values(m Metric, f Filter) (vals, weights []float64)
	TotalNodeHours(f Filter) float64
	BuildIndex()
	HasIndex() bool
}

var (
	_ Reader = (*Store)(nil)
	_ Reader = (*ShardSet)(nil)
)

// Shard is one immutable time partition: a day's worth of job records
// in the columnar layout, plus the manifest entry describing the file
// it came from. Once loaded (or adopted from a previous generation) a
// shard is never mutated — incremental reload shares shard pointers
// across snapshot generations, so any write after publication would be
// a data race with the generation still serving.
type Shard struct {
	info ShardInfo
	st   *Store
}

// ID returns the shard's epoch-day partition key.
func (sh *Shard) ID() int64 { return sh.info.ID }

// Info returns the manifest entry the shard was loaded against.
func (sh *Shard) Info() ShardInfo { return sh.info }

// Columns exposes the shard's columnar layout, read-only — the
// incremental-reload tests use it to assert that unchanged shards are
// pointer-shared (not copied) across generations.
func (sh *Shard) Columns() *Columns { return &sh.st.c }

// ShardSet is the sharded counterpart of Store: an ordered list of
// day-partitioned shards presenting one logical row space. The global
// row order is the concatenation of the shards in ascending shard-ID
// order, rows in their original order within each shard — exactly the
// order cmd/ingest's ReorderByEndDay gives the monolithic outputs, so
// the sharded and monolithic load paths answer byte-identically.
type ShardSet struct {
	shards []*Shard
	// starts[i] is the global row offset of shard i; starts[len] = Len().
	starts []int
	// built marks that BuildIndex ran over the set (per-shard indexes
	// may predate it on shards reused from an earlier generation).
	built bool
	stats ShardLoadStats
}

// ShardLoadStats counts how a set was assembled: Loaded shards were
// decoded from disk, Reused shards were adopted pointer-wise from the
// previous generation.
type ShardLoadStats struct {
	Loaded int
	Reused int
}

// NewShardSet wraps in-memory columnar partitions as a shard set, in
// the given order. Each part must have derived state populated
// (appendRecord or recomputeDerived do this). Intended for tests; disk
// sets come from LoadShardSet.
func NewShardSet(parts []*Columns) *ShardSet {
	shards := make([]*Shard, len(parts))
	for i, c := range parts {
		shards[i] = &Shard{
			info: ShardInfo{ID: int64(i), Rows: c.Len(), MinEnd: c.minEnd, MaxEnd: c.maxEnd},
			st:   FromColumns(c),
		}
	}
	return newShardSet(shards, ShardLoadStats{Loaded: len(parts)})
}

func newShardSet(shards []*Shard, stats ShardLoadStats) *ShardSet {
	ss := &ShardSet{shards: shards, starts: make([]int, len(shards)+1), stats: stats}
	for i, sh := range shards {
		ss.starts[i+1] = ss.starts[i] + sh.st.Len()
	}
	return ss
}

// NumShards returns how many partitions back the set.
func (ss *ShardSet) NumShards() int { return len(ss.shards) }

// ShardAt returns the i'th shard in global order.
func (ss *ShardSet) ShardAt(i int) *Shard { return ss.shards[i] }

// LoadStats reports how the set was assembled (decoded vs reused).
func (ss *ShardSet) LoadStats() ShardLoadStats { return ss.stats }

// shardByID finds a shard by partition key; shards are kept in
// ascending ID order.
func (ss *ShardSet) shardByID(id int64) *Shard {
	i := sort.Search(len(ss.shards), func(k int) bool { return ss.shards[k].info.ID >= id })
	if i < len(ss.shards) && ss.shards[i].info.ID == id {
		return ss.shards[i]
	}
	return nil
}

// Len returns the total row count across shards.
func (ss *ShardSet) Len() int { return ss.starts[len(ss.shards)] }

// Record materializes global row i.
func (ss *ShardSet) Record(i int) JobRecord {
	si := sort.Search(len(ss.shards), func(k int) bool { return ss.starts[k+1] > i })
	return ss.shards[si].st.Record(i - ss.starts[si])
}

// BuildIndex builds each shard's posting lists, in parallel. Shards
// adopted from a previous generation already carry an index and are
// skipped — rebuilding would race the old generation's readers, and the
// postings are a pure function of the shard's immutable rows anyway.
// Must not run concurrently with queries against this set (the serve
// layer indexes before publishing a snapshot).
func (ss *ShardSet) BuildIndex() {
	runChunks(nil, len(ss.shards), runtime.GOMAXPROCS(0), func(i int) {
		if !ss.shards[i].st.HasIndex() {
			ss.shards[i].st.BuildIndex()
		}
	})
	ss.built = true
}

// HasIndex reports whether BuildIndex ran over the set.
func (ss *ShardSet) HasIndex() bool { return ss.built }

// shardSel is a per-shard selection with cumulative offsets into the
// global selected sequence: cum[i] selected rows precede shard i.
type shardSel struct {
	sets []rowSet
	cum  []int
}

func (sel *shardSel) total() int { return sel.cum[len(sel.cum)-1] }

// canMatch prunes a whole shard against the filter's end-time window
// using the columns' derived bounds — O(1) per shard, no row touched.
// Pruning only ever skips shards whose selection is provably empty
// (matchCompiled rejects End < EndAfter and End >= EndBefore), so it
// cannot change the selected set, only the work done to compute it.
func (sh *Shard) canMatch(f Filter) bool {
	c := &sh.st.c
	if c.Len() == 0 {
		return false
	}
	if f.EndAfter != 0 && c.maxEnd < f.EndAfter {
		return false
	}
	if f.EndBefore != 0 && c.minEnd >= f.EndBefore {
		return false
	}
	return true
}

// selectShards evaluates the filter per shard, time-pruning whole
// shards first; per-shard compilation then prunes dictionary misses
// (compile's impossible flag) without scanning. pruned counts the
// shards answered without touching any row data.
func (ss *ShardSet) selectShards(f Filter) (shardSel, int) {
	sel := shardSel{sets: make([]rowSet, len(ss.shards)), cum: make([]int, len(ss.shards)+1)}
	pruned := 0
	for i, sh := range ss.shards {
		if sh.canMatch(f) {
			sel.sets[i] = sh.st.selectSet(f)
		} else {
			pruned++
		}
		sel.cum[i+1] = sel.cum[i] + sel.sets[i].len()
	}
	return sel, pruned
}

// walkSel visits every selected row in global order: fn is called per
// shard with its store, its selection, and the [a,b) positions of that
// selection to consume.
func (ss *ShardSet) walkSel(sel *shardSel, fn func(st *Store, rs rowSet, a, b int)) {
	for i, sh := range ss.shards {
		if n := sel.sets[i].len(); n > 0 {
			fn(sh.st, sel.sets[i], 0, n)
		}
	}
}

// walkRange visits selected positions [lo,hi) of the global sequence —
// the cross-shard analogue of slicing one shard's rowSet. A 4096-row
// chunk may span a shard boundary; fn then runs once per covered
// shard, in order, so the accumulation order matches the monolithic
// kernel's exactly.
func (ss *ShardSet) walkRange(sel *shardSel, lo, hi int, fn func(st *Store, rs rowSet, a, b int)) {
	si := sort.Search(len(ss.shards), func(k int) bool { return sel.cum[k+1] > lo })
	for pos := lo; pos < hi && si < len(ss.shards); si++ {
		base := sel.cum[si]
		end := sel.cum[si+1]
		if end == base {
			continue
		}
		b := end - base
		if end > hi {
			b = hi - base
		}
		fn(ss.shards[si].st, sel.sets[si], pos-base, b)
		pos = base + b
	}
}

// Select returns the global row indices passing the filter, ascending.
func (ss *ShardSet) Select(f Filter) []int {
	sel, _ := ss.selectShards(f)
	if sel.total() == 0 {
		return nil
	}
	out := make([]int, 0, sel.total())
	for i := range ss.shards {
		base := ss.starts[i]
		rs := sel.sets[i]
		for j, n := 0, rs.len(); j < n; j++ {
			out = append(out, base+rs.row(j))
		}
	}
	return out
}

// Records materializes the records passing the filter, global order.
func (ss *ShardSet) Records(f Filter) []JobRecord {
	sel, _ := ss.selectShards(f)
	out := make([]JobRecord, 0, sel.total())
	ss.walkSel(&sel, func(st *Store, rs rowSet, a, b int) {
		for j := a; j < b; j++ {
			out = append(out, st.Record(rs.row(j)))
		}
	})
	return out
}

// Values extracts metric m and node-hour weights over the filtered
// rows, global order.
func (ss *ShardSet) Values(m Metric, f Filter) (vals, weights []float64) {
	sel, _ := ss.selectShards(f)
	n := sel.total()
	if n == 0 {
		return nil, nil
	}
	vals = make([]float64, 0, n)
	weights = make([]float64, 0, n)
	ss.walkSel(&sel, func(st *Store, rs rowSet, a, b int) {
		col := st.col(m)
		for j := a; j < b; j++ {
			i := rs.row(j)
			vals = append(vals, col[i])
			weights = append(weights, st.c.weight[i])
		}
	})
	return vals, weights
}

// TotalNodeHours sums weights over the filtered rows, accumulating in
// global row order (one running sum carried across shard boundaries,
// matching Store.TotalNodeHours bit for bit).
func (ss *ShardSet) TotalNodeHours(f Filter) float64 {
	sel, _ := ss.selectShards(f)
	var sw float64
	ss.walkSel(&sel, func(st *Store, rs rowSet, a, b int) {
		for j := a; j < b; j++ {
			sw += st.c.weight[rs.row(j)]
		}
	})
	return sw
}

// Aggregate computes the node-hour-weighted aggregate of metric m over
// the filtered rows, strictly in global row order with one running
// accumulator carried across shard boundaries — the same operation
// sequence as Store.Aggregate over the concatenated rows, hence
// bit-identical to it for any shard split.
func (ss *ShardSet) Aggregate(m Metric, f Filter) Agg {
	sel, _ := ss.selectShards(f)
	agg := Agg{Min: math.Inf(1), Max: math.Inf(-1)}
	var sw, swx, plain float64
	ss.walkSel(&sel, func(st *Store, rs rowSet, a, b int) {
		col := st.col(m)
		weight := st.c.weight
		for j := a; j < b; j++ {
			i := rs.row(j)
			w := weight[i]
			v := col[i]
			sw += w
			swx += w * v
			plain += v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
	})
	agg.N = sel.total()
	agg.NodeHours = sw
	if agg.N == 0 {
		agg.Mean, agg.StdDev, agg.Min, agg.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		agg.UnweightedMean = math.NaN()
		return agg
	}
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	var ss2 float64
	ss.walkSel(&sel, func(st *Store, rs rowSet, a, b int) {
		col := st.col(m)
		weight := st.c.weight
		for j := a; j < b; j++ {
			i := rs.row(j)
			d := col[i] - agg.Mean
			ss2 += weight[i] * d * d
		}
	})
	agg.StdDev = math.Sqrt(ss2 / sw)
	return agg
}

// AggregateParallel is the chunked parallel aggregate over the global
// selected sequence: the same fixed 4096-row chunks as the monolithic
// kernel, laid over the concatenation of the per-shard selections. A
// chunk spanning a shard boundary accumulates its shards in order, so
// every chunk partial — and therefore the chunk-ordered merge — is
// bit-identical to Store.AggregateParallel over the same rows, for any
// shard split and any worker count.
func (ss *ShardSet) AggregateParallel(m Metric, f Filter, workers int) Agg {
	sel, _ := ss.selectShards(f)
	return ss.aggregateSel(nil, m, &sel, workers)
}

// AggregateParallelCtx is AggregateParallel with the same cooperative
// cancellation contract as Store.AggregateParallelCtx.
func (ss *ShardSet) AggregateParallelCtx(ctx context.Context, m Metric, f Filter, workers int) (Agg, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	sel, _ := ss.selectShards(f)
	agg := ss.aggregateSel(done, m, &sel, workers)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Agg{}, err
		}
	}
	return agg, nil
}

// aggregateSel mirrors Store.aggregateSet over a cross-shard selection:
// chunk c covers selected positions [c*4096, (c+1)*4096) of the global
// sequence, its partial seeds min/max from the chunk's first selected
// value and merges in chunk order.
func (ss *ShardSet) aggregateSel(done <-chan struct{}, m Metric, sel *shardSel, workers int) Agg {
	n := sel.total()
	agg := Agg{N: n}
	if n == 0 {
		nan := math.NaN()
		return Agg{Mean: nan, StdDev: nan, Min: nan, Max: nan, UnweightedMean: nan}
	}
	chunks := (n + aggChunk - 1) / aggChunk
	partials := make([]aggPartial, chunks)
	runChunks(done, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > n {
			hi = n
		}
		var p aggPartial
		first := true
		ss.walkRange(sel, lo, hi, func(st *Store, rs rowSet, a, b int) {
			col := st.col(m)
			weight := st.c.weight
			for j := a; j < b; j++ {
				i := rs.row(j)
				w := weight[i]
				v := col[i]
				if first {
					// Same seeding as the monolithic kernel: min/max start
					// at the chunk's first value, then every value of the
					// chunk (including the first) is compared against them.
					p.min, p.max = v, v
					first = false
				}
				p.sw += w
				p.swx += w * v
				p.plain += v
				if v < p.min {
					p.min = v
				}
				if v > p.max {
					p.max = v
				}
			}
		})
		partials[c] = p
	})
	var sw, swx, plain float64
	agg.Min, agg.Max = partials[0].min, partials[0].max
	for _, p := range partials {
		sw += p.sw
		swx += p.swx
		plain += p.plain
		if p.min < agg.Min {
			agg.Min = p.min
		}
		if p.max > agg.Max {
			agg.Max = p.max
		}
	}
	agg.NodeHours = sw
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	mean := agg.Mean
	runChunks(done, chunks, workers, func(c int) {
		lo, hi := c*aggChunk, (c+1)*aggChunk
		if hi > n {
			hi = n
		}
		var ssq float64
		ss.walkRange(sel, lo, hi, func(st *Store, rs rowSet, a, b int) {
			col := st.col(m)
			weight := st.c.weight
			for j := a; j < b; j++ {
				i := rs.row(j)
				d := col[i] - mean
				ssq += weight[i] * d * d
			}
		})
		partials[c].ss = ssq
	})
	var ssq float64
	for _, p := range partials {
		ssq += p.ss
	}
	agg.StdDev = math.Sqrt(ssq / sw)
	return agg
}

// GroupBy computes node-hour-weighted means per group over the
// filtered rows. Accumulation runs in global row order, so each key's
// running sums see contributions in exactly the order the monolithic
// GroupBy's per-code accumulators do; the output uses the same sort
// (node-hours descending, key ascending). Keys are accumulated by
// string (shards have independent dictionaries, so codes don't align
// across shards).
func (ss *ShardSet) GroupBy(k GroupKey, metrics []Metric, f Filter) []Group {
	sel, _ := ss.selectShards(f)
	if len(ss.shards) == 0 {
		return []Group{}
	}
	if ss.shards[0].st.keyColumn(k) == nil {
		return ss.groupByEmptyKey(metrics, &sel)
	}
	type acc struct {
		n   int
		sw  float64
		swx []float64
	}
	accs := make(map[string]*acc)
	for si, sh := range ss.shards {
		rs := sel.sets[si]
		n := rs.len()
		if n == 0 {
			continue
		}
		kc := sh.st.keyColumn(k)
		cols := make([][]float64, len(metrics))
		for j, m := range metrics {
			cols[j] = sh.st.col(m)
		}
		weight := sh.st.c.weight
		for j := 0; j < n; j++ {
			i := rs.row(j)
			key := kc.Values[kc.Codes[i]]
			a := accs[key]
			if a == nil {
				a = &acc{swx: make([]float64, len(metrics))}
				accs[key] = a
			}
			w := weight[i]
			a.n++
			a.sw += w
			for mj, col := range cols {
				a.swx[mj] += w * col[i]
			}
		}
	}
	out := make([]Group, 0, len(accs))
	for key, a := range accs {
		g := Group{Key: key, N: a.n, NodeHours: a.sw, Mean: make(map[Metric]float64)}
		for mj, m := range metrics {
			if a.sw > 0 {
				g.Mean[m] = a.swx[mj] / a.sw
			} else {
				g.Mean[m] = math.NaN()
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// groupByEmptyKey mirrors Store.groupByEmptyKey for an out-of-range
// GroupKey: every selected row lands in the "" bucket, global order.
func (ss *ShardSet) groupByEmptyKey(metrics []Metric, sel *shardSel) []Group {
	if sel.total() == 0 {
		return []Group{}
	}
	g := Group{Key: "", N: sel.total(), Mean: make(map[Metric]float64)}
	swx := make([]float64, len(metrics))
	ss.walkSel(sel, func(st *Store, rs rowSet, a, b int) {
		cols := make([][]float64, len(metrics))
		for j, m := range metrics {
			cols[j] = st.col(m)
		}
		for j := a; j < b; j++ {
			i := rs.row(j)
			w := st.c.weight[i]
			g.NodeHours += w
			for mj, col := range cols {
				swx[mj] += w * col[i]
			}
		}
	})
	for mj, m := range metrics {
		if g.NodeHours > 0 {
			g.Mean[m] = swx[mj] / g.NodeHours
		} else {
			g.Mean[m] = math.NaN()
		}
	}
	return []Group{g}
}

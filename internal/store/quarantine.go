package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Shard quarantine (DESIGN.md §15).
//
// When verification finds a shard whose bytes no longer match its
// manifest entry (bit rot, a torn rewrite, a partial restore), the
// shard is not deleted — deletion destroys the evidence and any chance
// of forensics — and it must not keep failing every reload. It is
// moved aside to "<shard>.quarantined" and the event is recorded in
// QUARANTINE.supremm, an append-only log of what happened to which
// shard, why, and when. A later repair that rebuilds the shard from
// the monolithic backing appends a matching "repair" record, so the
// log is the full custody chain of every day the store ever degraded.
const (
	// QuarantineFile is the quarantine log's file name inside a data
	// directory.
	QuarantineFile = "QUARANTINE.supremm"
	// QuarantineSuffix is appended to a shard file name when the shard
	// is moved aside.
	QuarantineSuffix = ".quarantined"
	// quarantineMagic is the log's first line; the rest is one JSON
	// event per line.
	quarantineMagic = "SUPRMMQ1"
	// quarantineMaxEvents bounds a decoded log so hostile input cannot
	// balloon memory; a real directory sees a handful of events.
	quarantineMaxEvents = 1 << 16
)

// Quarantine event actions.
const (
	// ActionQuarantine: the shard failed verification and was moved
	// aside (or was already missing and only recorded).
	ActionQuarantine = "quarantine"
	// ActionRepair: the shard was rebuilt byte-identically from the
	// monolithic backing and returned to service.
	ActionRepair = "repair"
)

// QuarantineEvent is one entry in the quarantine log.
type QuarantineEvent struct {
	// Day is the shard's epoch-day partition key.
	Day int64 `json:"day"`
	// Action is ActionQuarantine or ActionRepair.
	Action string `json:"action"`
	// Reason is the verification failure (quarantine) or the repair
	// source (repair), human-readable.
	Reason string `json:"reason"`
	// At is the event's unix time in seconds, supplied by the caller —
	// the store layer never reads the wall clock itself, so tests and
	// the serve layer's injected clock stay deterministic. Zero when no
	// clock was available.
	At int64 `json:"at"`
	// Size and Hash are the manifest entry's expectations for the
	// shard at event time, recorded so the log is interpretable after
	// the manifest itself has moved on.
	Size int64  `json:"size"`
	Hash uint32 `json:"hash"`
}

// QuarantinedShardFile returns the aside-name for a day's shard.
func QuarantinedShardFile(day int64) string { return ShardFileName(day) + QuarantineSuffix }

// EncodeQuarantineLog serializes events: the magic line followed by
// one compact JSON object per line. encode(decode(b)) == b for every
// accepted b (the decoder rejects non-canonical encodings), which is
// what FuzzQuarantineRecord pins.
func EncodeQuarantineLog(events []QuarantineEvent) []byte {
	var buf bytes.Buffer
	buf.WriteString(quarantineMagic)
	buf.WriteByte('\n')
	for _, ev := range events {
		// Marshal of a flat struct with string/int fields cannot fail.
		line, err := json.Marshal(ev)
		if err != nil {
			panic("store: quarantine event marshal: " + err.Error())
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// DecodeQuarantineLog parses and validates quarantine log bytes. The
// magic must match, every line must be a canonical compact JSON event
// (re-encoding reproduces the line exactly — no unknown fields, no
// reordered keys, no stray whitespace), actions must be known, days
// must be in manifest range, and the event count is bounded. Any
// damage is an error, never a panic.
func DecodeQuarantineLog(data []byte) ([]QuarantineEvent, error) {
	if len(data) < len(quarantineMagic)+1 {
		return nil, fmt.Errorf("store: quarantine log is %d bytes, shorter than its header", len(data))
	}
	if string(data[:len(quarantineMagic)]) != quarantineMagic || data[len(quarantineMagic)] != '\n' {
		return nil, fmt.Errorf("store: bad quarantine log magic %q", data[:len(quarantineMagic)])
	}
	rest := data[len(quarantineMagic)+1:]
	events := []QuarantineEvent{}
	for lineNo := 2; len(rest) > 0; lineNo++ {
		if len(events) >= quarantineMaxEvents {
			return nil, fmt.Errorf("store: quarantine log exceeds %d events", quarantineMaxEvents)
		}
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("store: quarantine log line %d is not newline-terminated", lineNo)
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		var ev QuarantineEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("store: quarantine log line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("store: quarantine log line %d has trailing data", lineNo)
		}
		if ev.Action != ActionQuarantine && ev.Action != ActionRepair {
			return nil, fmt.Errorf("store: quarantine log line %d: unknown action %q", lineNo, ev.Action)
		}
		if ev.Day < -manifestMaxID || ev.Day > manifestMaxID {
			return nil, fmt.Errorf("store: quarantine log line %d: day %d out of range", lineNo, ev.Day)
		}
		if ev.Size < 0 {
			return nil, fmt.Errorf("store: quarantine log line %d: negative size %d", lineNo, ev.Size)
		}
		canonical, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("store: quarantine log line %d: %w", lineNo, err)
		}
		if !bytes.Equal(canonical, line) {
			return nil, fmt.Errorf("store: quarantine log line %d is not canonical", lineNo)
		}
		events = append(events, ev)
	}
	return events, nil
}

// LoadQuarantineLog reads dir's quarantine log; a missing file means
// no events, not an error.
func LoadQuarantineLog(dir string) ([]QuarantineEvent, error) {
	data, err := os.ReadFile(filepath.Join(dir, QuarantineFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeQuarantineLog(data)
}

// AppendQuarantineEvent durably appends one event to dir's quarantine
// log: read, append, atomic rewrite (the log is a handful of lines, so
// rewriting beats managing partial appends through crashes). A corrupt
// existing log is an error — healing machinery must not silently
// discard the custody chain it exists to keep.
func AppendQuarantineEvent(dir string, ev QuarantineEvent) error {
	events, err := LoadQuarantineLog(dir)
	if err != nil {
		return err
	}
	return AtomicWriteBytes(dir, QuarantineFile, EncodeQuarantineLog(append(events, ev)))
}

// QuarantineShard moves day e.ID's shard aside and records why. If the
// shard file is already gone (lost, or a previous quarantine crashed
// between rename and log append) the move is skipped and only the
// record is written, so quarantine is idempotent per failure. now is
// the caller's clock reading (unix seconds; 0 when clock-free).
func QuarantineShard(dir string, e ShardInfo, reason string, now int64) error {
	src := filepath.Join(dir, ShardFileName(e.ID))
	dst := filepath.Join(dir, QuarantinedShardFile(e.ID))
	if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err := FsyncDir(dir); err != nil {
		return err
	}
	return AppendQuarantineEvent(dir, QuarantineEvent{
		Day: e.ID, Action: ActionQuarantine, Reason: reason, At: now,
		Size: e.Size, Hash: e.Hash,
	})
}

// IsQuarantined reports whether day's shard has been moved aside.
func IsQuarantined(dir string, day int64) bool {
	_, err := os.Stat(filepath.Join(dir, QuarantinedShardFile(day)))
	return err == nil
}

// QuarantinedDays lists the epoch days with a *.quarantined file in
// dir, ascending.
func QuarantinedDays(dir string) ([]int64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.supremm"+QuarantineSuffix))
	if err != nil {
		return nil, err
	}
	days := make([]int64, 0, len(paths))
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), QuarantineSuffix)
		var day int64
		if _, err := fmt.Sscanf(name, "shard-%d.supremm", &day); err != nil {
			continue // a stray file shaped like a quarantined shard; not ours
		}
		days = append(days, day)
	}
	sort.Slice(days, func(a, b int) bool { return days[a] < days[b] })
	return days, nil
}

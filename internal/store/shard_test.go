package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEpochDayFloors(t *testing.T) {
	cases := []struct{ ts, day int64 }{
		{0, 0}, {1, 0}, {86399, 0}, {86400, 1}, {86401, 1},
		{2 * 86400, 2}, {-1, -1}, {-86399, -1}, {-86400, -1}, {-86401, -2},
	}
	for _, c := range cases {
		if got := EpochDay(c.ts); got != c.day {
			t.Errorf("EpochDay(%d) = %d, want %d", c.ts, got, c.day)
		}
	}
}

func manifestFixture() []ShardInfo {
	return []ShardInfo{
		{ID: -3, Rows: 5, MinEnd: -3 * SecondsPerDay, MaxEnd: -3*SecondsPerDay + 10, Size: 400, Hash: 0xdeadbeef},
		{ID: 0, Rows: 1, MinEnd: 0, MaxEnd: SecondsPerDay - 1, Size: 64, Hash: 1},
		{ID: 19500, Rows: 1000, MinEnd: 19500*SecondsPerDay + 5, MaxEnd: 19500*SecondsPerDay + 86000, Size: 1 << 20, Hash: 42},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for _, entries := range [][]ShardInfo{nil, manifestFixture()} {
		enc := EncodeManifest(entries)
		dec, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("decode(%d entries): %v", len(entries), err)
		}
		if len(dec) != len(entries) {
			t.Fatalf("decoded %d entries, want %d", len(dec), len(entries))
		}
		for i := range dec {
			if dec[i] != entries[i] {
				t.Errorf("entry %d: %+v != %+v", i, dec[i], entries[i])
			}
		}
		// The bijectivity half the fuzzer leans on: accepted bytes
		// re-encode identically.
		if re := EncodeManifest(dec); string(re) != string(enc) {
			t.Error("encode(decode(m)) differs from m")
		}
	}
}

// reseal recomputes the trailing CRC after a deliberate corruption of
// the body, so the test reaches the validation behind the checksum.
func reseal(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func TestManifestRejectMatrix(t *testing.T) {
	valid := EncodeManifest(manifestFixture())
	body := append([]byte(nil), valid[:len(valid)-4]...)
	patched := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), body...)
		mutate(b)
		return reseal(b)
	}
	day := int64(7)
	lo := day * SecondsPerDay
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"shorter than header", valid[:manifestHeaderLen]},
		{"truncated tail", valid[:len(valid)-5]},
		{"flipped byte (checksum)", patchedByteFlip(valid, len(valid)/2)},
		{"bad magic", patched(func(b []byte) { b[0] ^= 0xff })},
		{"bad version", patched(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) })},
		{"nonzero flags", patched(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1) })},
		{"hostile count", patched(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<60) })},
		{"count off by one", patched(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 4) })},
		{"trailing bytes", reseal(append(append([]byte(nil), body...), 0, 0, 0, 0))},
		{"zero rows", EncodeManifest([]ShardInfo{{ID: day, Rows: 0, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1}})},
		{"id out of range", EncodeManifest([]ShardInfo{{ID: 1 << 41, Rows: 1, MinEnd: (1 << 41) * SecondsPerDay, MaxEnd: (1 << 41) * SecondsPerDay, Size: 64, Hash: 1}})},
		{"rows beyond size", EncodeManifest([]ShardInfo{{ID: day, Rows: 64, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1}})},
		{"duplicate ids", EncodeManifest([]ShardInfo{
			{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1},
			{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1},
		})},
		{"descending ids", EncodeManifest([]ShardInfo{
			{ID: day + 1, Rows: 1, MinEnd: lo + SecondsPerDay, MaxEnd: lo + SecondsPerDay, Size: 64, Hash: 1},
			{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1},
		})},
		{"minEnd before its day", EncodeManifest([]ShardInfo{{ID: day, Rows: 1, MinEnd: lo - 1, MaxEnd: lo, Size: 64, Hash: 1}})},
		{"maxEnd past its day", EncodeManifest([]ShardInfo{{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo + SecondsPerDay, Size: 64, Hash: 1}})},
		{"minEnd above maxEnd", EncodeManifest([]ShardInfo{{ID: day, Rows: 1, MinEnd: lo + 10, MaxEnd: lo + 5, Size: 64, Hash: 1}})},
	}
	for _, c := range cases {
		if _, err := DecodeManifest(c.data); err == nil {
			t.Errorf("%s: decode accepted corrupt manifest", c.name)
		}
	}
	// The matrix used real corruptions: the pristine bytes still decode.
	if _, err := DecodeManifest(valid); err != nil {
		t.Fatalf("pristine manifest rejected: %v", err)
	}
}

func patchedByteFlip(data []byte, i int) []byte {
	b := append([]byte(nil), data...)
	b[i] ^= 0xff
	return b
}

// multiDayStore is floorStore grouped by end day — the shape every
// shard test wants: a few thousand rows spanning several epoch days.
func multiDayStore(n int) *Store {
	st := floorStore(n)
	st.ReorderByEndDay()
	return st
}

func TestWriteShardDirRoundTrip(t *testing.T) {
	st := multiDayStore(3000)
	dir := t.TempDir()
	// A shard from a "previous batch" whose day is gone must be cleaned
	// up once the new manifest lands.
	stale := filepath.Join(dir, "shard-999999.supremm")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale shard from a previous batch survived WriteShardDir")
	}

	ss, err := LoadShardSet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Len() != st.Len() {
		t.Fatalf("shard set has %d rows, store has %d", ss.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if ss.Record(i) != st.Record(i) {
			t.Fatalf("row %d: shard %+v != store %+v", i, ss.Record(i), st.Record(i))
		}
	}
	if stats := ss.LoadStats(); stats.Loaded != ss.NumShards() || stats.Reused != 0 {
		t.Errorf("cold load stats %+v, want all %d loaded", stats, ss.NumShards())
	}
	if ss.NumShards() < 2 {
		t.Fatalf("fixture spans %d shards, want >= 2 for a meaningful round trip", ss.NumShards())
	}
	// Every shard holds exactly its own day, ascending.
	for i := 0; i < ss.NumShards(); i++ {
		sh := ss.ShardAt(i)
		if i > 0 && sh.ID() <= ss.ShardAt(i-1).ID() {
			t.Fatalf("shard ids not ascending at %d", i)
		}
		info := sh.Info()
		if EpochDay(info.MinEnd) != sh.ID() || EpochDay(info.MaxEnd) != sh.ID() {
			t.Errorf("shard %d holds ends outside its day: [%d,%d]", sh.ID(), info.MinEnd, info.MaxEnd)
		}
	}
	// The atomic writer left no work files behind.
	glob, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range glob {
		if strings.HasPrefix(de.Name(), ".") {
			t.Errorf("temp file %s survived the atomic writes", de.Name())
		}
	}
}

func TestWriteShardDirDeterministic(t *testing.T) {
	st := multiDayStore(1500)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := WriteShardDir(dirA, st); err != nil {
		t.Fatal(err)
	}
	if err := WriteShardDir(dirB, st); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dirA, "shard-*.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	names = append(names, filepath.Join(dirA, ManifestFile))
	for _, p := range names {
		a, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, filepath.Base(p)))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: two writes of the same store differ", filepath.Base(p))
		}
	}
}

func TestLoadShardSetReuse(t *testing.T) {
	st := multiDayStore(3000)
	dir := t.TempDir()
	if err := WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
	ss1, err := LoadShardSet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Rewriting the unchanged store produces byte-identical shards; a
	// reload against the previous generation decodes nothing.
	if err := WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
	ss2, err := LoadShardSet(dir, ss1)
	if err != nil {
		t.Fatal(err)
	}
	if stats := ss2.LoadStats(); stats.Reused != ss1.NumShards() || stats.Loaded != 0 {
		t.Fatalf("unchanged reload stats %+v, want all %d reused", stats, ss1.NumShards())
	}
	for i := 0; i < ss2.NumShards(); i++ {
		if ss2.ShardAt(i) != ss1.ShardAt(i) {
			t.Fatalf("shard %d not adopted by pointer on unchanged reload", i)
		}
	}

	// Append one new day: only that shard is decoded, history is shared.
	st2 := New()
	for i := 0; i < st.Len(); i++ {
		st2.Add(st.Record(i))
	}
	newDay := ss1.ShardAt(ss1.NumShards()-1).ID() + 2
	for j := 0; j < 40; j++ {
		r := st.Record(j)
		r.JobID = int64(900000 + j)
		r.End = newDay*SecondsPerDay + int64(100*j+50)
		r.Start = r.End - 3600
		st2.Add(r)
	}
	st2.ReorderByEndDay()
	if err := WriteShardDir(dir, st2); err != nil {
		t.Fatal(err)
	}
	ss3, err := LoadShardSet(dir, ss2)
	if err != nil {
		t.Fatal(err)
	}
	if stats := ss3.LoadStats(); stats.Reused != ss1.NumShards() || stats.Loaded != 1 {
		t.Fatalf("one-day append stats %+v, want %d reused / 1 loaded", stats, ss1.NumShards())
	}
	for i := 0; i < ss1.NumShards(); i++ {
		old, now := ss2.ShardAt(i), ss3.ShardAt(i)
		if old != now {
			t.Fatalf("unchanged shard %d re-decoded on append", old.ID())
		}
		// Pointer-shared columns, not copies: the same backing arrays.
		if &old.Columns().JobID[0] != &now.Columns().JobID[0] {
			t.Fatalf("shard %d columns copied instead of shared", old.ID())
		}
	}
	if ss3.Len() != st2.Len() {
		t.Fatalf("after append shard set has %d rows, store has %d", ss3.Len(), st2.Len())
	}
	for i := 0; i < st2.Len(); i++ {
		if ss3.Record(i) != st2.Record(i) {
			t.Fatalf("row %d diverges after incremental reload", i)
		}
	}
}

func TestLoadShardSetTornShard(t *testing.T) {
	st := multiDayStore(2000)
	dir := t.TempDir()
	if err := WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
	ss1, err := LoadShardSet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, ShardFileName(ss1.ShardAt(0).ID()))
	good, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}

	// Torn to a strict prefix: the size check fires even when the
	// previous generation holds the healthy shard in memory.
	if err := os.WriteFile(victim, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardSet(dir, ss1); err == nil {
		t.Error("torn shard loaded despite healthy in-memory copy")
	}
	if _, err := LoadShardSet(dir, nil); err == nil {
		t.Error("torn shard loaded cold")
	}

	// Same size, different content: the manifest hash catches it cold.
	swapped := append([]byte(nil), good...)
	swapped[len(swapped)/2] ^= 0xff
	if err := os.WriteFile(victim, swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardSet(dir, nil); err == nil {
		t.Error("hash-mismatched shard loaded cold")
	}

	// Shard deleted while the manifest still lists it.
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardSet(dir, ss1); err == nil {
		t.Error("stale manifest (missing shard) loaded despite in-memory copy")
	}
}

func TestShardPruneByTimeWindow(t *testing.T) {
	st := multiDayStore(3000)
	_, cols := st.partitionByEndDay()
	ss := NewShardSet(cols)
	if ss.NumShards() < 3 {
		t.Fatalf("fixture spans %d shards, want >= 3", ss.NumShards())
	}
	mid := ss.ShardAt(1).Info()
	f := Filter{Cluster: "ranger", EndAfter: mid.MinEnd, EndBefore: mid.MaxEnd + 1}
	_, pruned := ss.selectShards(f)
	if want := ss.NumShards() - 1; pruned != want {
		t.Errorf("one-day window pruned %d of %d shards, want %d", pruned, ss.NumShards(), want)
	}
	// Pruning never changes the answer.
	for _, m := range []Metric{MetricCPUIdle, MetricMemUsed} {
		if got, want := ss.Aggregate(m, f), st.Aggregate(m, f); !aggBitsEqual(got, want) {
			t.Errorf("%s: pruned aggregate diverges from monolithic", m)
		}
	}
	if got, want := len(ss.Select(f)), len(st.Select(f)); got != want {
		t.Errorf("pruned select has %d rows, monolithic %d", got, want)
	}
	// An impossible window prunes everything and still answers exactly.
	none := Filter{EndAfter: (ss.ShardAt(ss.NumShards() - 1).Info().MaxEnd) + 1}
	_, pruned = ss.selectShards(none)
	if pruned != ss.NumShards() {
		t.Errorf("empty window pruned %d of %d shards", pruned, ss.NumShards())
	}
	if got, want := ss.Aggregate(MetricCPUIdle, none), st.Aggregate(MetricCPUIdle, none); !aggBitsEqual(got, want) {
		t.Error("all-pruned aggregate diverges from monolithic empty aggregate")
	}
}

func TestShardSetEmptyAndSingle(t *testing.T) {
	// Empty set: every query answers like an empty store.
	empty := NewShardSet(nil)
	if empty.Len() != 0 {
		t.Fatalf("empty shard set has %d rows", empty.Len())
	}
	if rs := empty.Select(Filter{}); rs != nil {
		t.Errorf("empty set selected %v", rs)
	}
	if g := empty.GroupBy(ByApp, []Metric{MetricCPUIdle}, Filter{}); len(g) != 0 {
		t.Errorf("empty set grouped %d buckets", len(g))
	}
	emptyAgg := New().Aggregate(MetricCPUIdle, Filter{})
	if got := empty.Aggregate(MetricCPUIdle, Filter{}); !aggBitsEqual(got, emptyAgg) {
		t.Error("empty shard set aggregate differs from empty store aggregate")
	}

	// Single shard: the degenerate split is exactly the monolith.
	st := equivStore(700)
	one := NewShardSet([]*Columns{st.Columns()})
	for _, f := range equivFilters {
		for _, m := range []Metric{MetricCPUIdle, MetricFlops} {
			if got, want := one.Aggregate(m, f), st.Aggregate(m, f); !aggBitsEqual(got, want) {
				t.Fatalf("single-shard aggregate diverges (%s, %+v)", m, f)
			}
		}
	}
}

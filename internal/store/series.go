package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"supremm/internal/stats"
)

// SystemSample is one sampling interval's cluster-wide aggregate — the
// system-level view of Figures 8 (active nodes), 9/10 (cluster FLOPS)
// and 11/12 (memory per node), obtained "through aggregation of the
// node (job) level data" (abstract).
type SystemSample struct {
	Time        int64   `json:"time"` // unix seconds (end of interval)
	ActiveNodes int     `json:"active_nodes"`
	BusyNodes   int     `json:"busy_nodes"`
	QueuedJobs  int     `json:"queued_jobs"`
	RunningJobs int     `json:"running_jobs"`
	TotalTFlops float64 `json:"total_tflops"`    // cluster SSE TFLOP/s
	MemPerNode  float64 `json:"mem_per_node_gb"` // mean GB over active nodes
	CPUUserFrac float64 `json:"cpu_user"`        // over busy node core-time
	CPUSysFrac  float64 `json:"cpu_sys"`
	CPUIdleFrac float64 `json:"cpu_idle"`
	ScratchMBps float64 `json:"io_scratch_write"` // cluster MB/s
	WorkMBps    float64 `json:"io_work_write"`
	ShareMBps   float64 `json:"io_share_write"`
	IBTxMBps    float64 `json:"net_ib_tx"`
	LnetTxMBps  float64 `json:"net_lnet_tx"`
}

// SeriesMetric extracts one named column from a SystemSample, using the
// same metric vocabulary as the job-level store where they coincide.
func (s SystemSample) SeriesMetric(name string) (float64, bool) {
	switch name {
	case "active_nodes":
		return float64(s.ActiveNodes), true
	case "busy_nodes":
		return float64(s.BusyNodes), true
	case "cpu_flops", "total_tflops":
		return s.TotalTFlops, true
	case "mem_used", "mem_per_node_gb":
		return s.MemPerNode, true
	case "cpu_idle":
		return s.CPUIdleFrac, true
	case "cpu_user":
		return s.CPUUserFrac, true
	case "cpu_sys":
		return s.CPUSysFrac, true
	case "io_scratch_write":
		return s.ScratchMBps, true
	case "io_work_write":
		return s.WorkMBps, true
	case "net_ib_tx":
		return s.IBTxMBps, true
	case "net_lnet_tx":
		return s.LnetTxMBps, true
	default:
		return 0, false
	}
}

// SeriesColumn extracts a named column across samples; unknown names
// return nil.
func SeriesColumn(samples []SystemSample, name string) []float64 {
	if len(samples) == 0 {
		return nil
	}
	if _, ok := samples[0].SeriesMetric(name); !ok {
		return nil
	}
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i], _ = s.SeriesMetric(name)
	}
	return out
}

// SaveSeries writes samples as JSON lines.
func SaveSeries(w io.Writer, samples []SystemSample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range samples {
		if err := enc.Encode(samples[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSeries reads a JSON-lines series file.
func LoadSeries(r io.Reader) ([]SystemSample, error) {
	var out []SystemSample
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var s SystemSample
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("store: load series: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

// SeriesSummary summarizes a column of the series.
func SeriesSummary(samples []SystemSample, name string) stats.Describe {
	return stats.Summarize(SeriesColumn(samples, name))
}

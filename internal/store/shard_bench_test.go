package store

import "testing"

// BenchmarkShardPrune measures what whole-shard time pruning buys: a
// one-day window query against a ~116-day sharded history touches one
// shard's rows, while the monolithic store must scan (or index-probe)
// the full corpus. bench-store greps this name into BENCH_store.txt.
func BenchmarkShardPrune(b *testing.B) {
	st := multiDayStore(100_000)
	st.BuildIndex()
	_, cols := st.partitionByEndDay()
	ss := NewShardSet(cols)
	ss.BuildIndex()
	mid := ss.ShardAt(ss.NumShards() / 2).Info()
	f := Filter{Cluster: "ranger", EndAfter: mid.MinEnd, EndBefore: mid.MaxEnd + 1}
	if _, pruned := ss.selectShards(f); pruned != ss.NumShards()-1 {
		b.Fatalf("window pruned %d of %d shards, want all but one", pruned, ss.NumShards())
	}

	b.Run("sharded-pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ss.Aggregate(MetricCPUIdle, f)
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.Aggregate(MetricCPUIdle, f)
		}
	})
}

package sarbaseline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/store"
)

func sampleNode(t *testing.T) (*procfs.Snapshot, *Sampler, *bytes.Buffer, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, "n0")
	snap.Time = 1000
	var cpuB, memB, netB bytes.Buffer
	return snap, NewSampler(&cpuB, &memB, &netB), &cpuB, &memB, &netB
}

func TestSamplerRoundTrip(t *testing.T) {
	snap, s, cpuB, memB, netB := sampleNode(t)
	// Prime.
	if err := s.Sample(snap); err != nil {
		t.Fatal(err)
	}
	// Advance 600s: 16 cores, 90% user / 10% idle split.
	for c := 0; c < 16; c++ {
		dev := string(rune('0' + c%10))
		_ = dev
	}
	for c := 0; c < 16; c++ {
		snap.Add(procfs.TypeCPU, itoa(c), "user", 54000)
		snap.Add(procfs.TypeCPU, itoa(c), "idle", 6000)
	}
	snap.Set(procfs.TypeMem, "0", "MemUsed", 2<<20)
	snap.Add(procfs.TypeNet, "eth0", "rx_bytes", 1024*600*10) // 10 KB/s
	snap.Time = 1600
	if err := s.Sample(snap); err != nil {
		t.Fatal(err)
	}

	cpu, err := ParseCPU(cpuB)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu) != 1 {
		t.Fatalf("cpu lines = %d (first interval must be discarded)", len(cpu))
	}
	if math.Abs(cpu[0].UserPct-90) > 0.1 || math.Abs(cpu[0].IdlePct-10) > 0.1 {
		t.Errorf("cpu split = %+v, want 90/10", cpu[0])
	}
	mem, err := ParseMem(memB)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != 2 {
		t.Fatalf("mem lines = %d (gauges report every sample)", len(mem))
	}
	if mem[1].UsedKB != 2<<20 {
		t.Errorf("mem used = %d", mem[1].UsedKB)
	}
	net, err := ParseNet(netB)
	if err != nil {
		t.Fatal(err)
	}
	if len(net) != 1 {
		t.Fatalf("net lines = %d", len(net))
	}
	if math.Abs(net[0].RxKBps-10) > 0.1 {
		t.Errorf("rx = %v KB/s, want 10", net[0].RxKBps)
	}
}

func itoa(c int) string {
	if c < 10 {
		return string(rune('0' + c))
	}
	return string(rune('0'+c/10)) + string(rune('0'+c%10))
}

func TestSamplerAggregatesAwayCoreResolution(t *testing.T) {
	// The key §1.2 deficiency: per-core imbalance is invisible. A node
	// with 8 pegged and 8 idle cores looks identical to one with all 16
	// at 50%.
	imbalanced, s1, cpu1, m1, n1 := sampleNode(t)
	_ = m1
	_ = n1
	s1.Sample(imbalanced)
	for c := 0; c < 8; c++ {
		imbalanced.Add(procfs.TypeCPU, itoa(c), "user", 60000)
	}
	for c := 8; c < 16; c++ {
		imbalanced.Add(procfs.TypeCPU, itoa(c), "idle", 60000)
	}
	imbalanced.Time = 1600
	s1.Sample(imbalanced)

	uniform, s2, cpu2, m2, n2 := sampleNode(t)
	_ = m2
	_ = n2
	s2.Sample(uniform)
	for c := 0; c < 16; c++ {
		uniform.Add(procfs.TypeCPU, itoa(c), "user", 30000)
		uniform.Add(procfs.TypeCPU, itoa(c), "idle", 30000)
	}
	uniform.Time = 1600
	s2.Sample(uniform)

	if cpu1.String() != cpu2.String() {
		t.Errorf("SAR should not distinguish imbalance:\n%s\nvs\n%s", cpu1, cpu2)
	}
}

func TestParserErrors(t *testing.T) {
	if _, err := ParseCPU(strings.NewReader("bad line\n")); err == nil {
		t.Error("malformed cpu should error")
	}
	if _, err := ParseCPU(strings.NewReader("X all 1 2 3 4\n")); err == nil {
		t.Error("bad cpu time should error")
	}
	if _, err := ParseCPU(strings.NewReader("100 all 1 2 x 4\n")); err == nil {
		t.Error("bad cpu value should error")
	}
	if _, err := ParseMem(strings.NewReader("junk\n")); err == nil {
		t.Error("malformed mem should error")
	}
	if _, err := ParseMem(strings.NewReader("X 1 2 3\n")); err == nil {
		t.Error("bad mem time should error")
	}
	if _, err := ParseMem(strings.NewReader("100 1 x 3\n")); err == nil {
		t.Error("bad mem value should error")
	}
	if _, err := ParseNet(strings.NewReader("nope\n")); err == nil {
		t.Error("malformed net should error")
	}
	if _, err := ParseNet(strings.NewReader("X eth0 1 2\n")); err == nil {
		t.Error("bad net time should error")
	}
	if _, err := ParseNet(strings.NewReader("100 eth0 x 2\n")); err == nil {
		t.Error("bad net rx should error")
	}
	if _, err := ParseNet(strings.NewReader("100 eth0 1 x\n")); err == nil {
		t.Error("bad net tx should error")
	}
	// Blank lines tolerated everywhere.
	if lines, err := ParseCPU(strings.NewReader("\n\n")); err != nil || len(lines) != 0 {
		t.Error("blank cpu stream should parse empty")
	}
}

func TestMetricCoverageIsTheHeadlineDeficiency(t *testing.T) {
	// SAR covers 2 of the 8 key metrics; the remaining 6 (and with
	// them Figs 2/3/5 radar axes, 9, 10, half of 12, most of Table 1)
	// cannot be produced at all.
	covered := CoveredMetrics()
	missing := MissingMetrics()
	if len(covered)+len(missing) != len(store.KeyMetrics()) {
		t.Fatalf("coverage split %d+%d != %d key metrics",
			len(covered), len(missing), len(store.KeyMetrics()))
	}
	seen := map[string]bool{}
	for _, m := range append(append([]string{}, covered...), missing...) {
		if seen[m] {
			t.Errorf("metric %s double-counted", m)
		}
		seen[m] = true
	}
	for _, km := range store.KeyMetrics() {
		if !seen[string(km)] {
			t.Errorf("key metric %s unaccounted", km)
		}
	}
	for _, m := range missing {
		switch m {
		case "cpu_flops", "io_scratch_write", "io_work_write", "net_ib_tx", "net_lnet_tx", "mem_used_max":
		default:
			t.Errorf("unexpected missing metric %s", m)
		}
	}
}

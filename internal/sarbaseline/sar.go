// Package sarbaseline implements the baseline the paper positions
// TACC_Stats against (§1.2, §2): the stock sysstat/SAR measurement
// stack. It reproduces SAR's essential properties and, with them, its
// deficiencies:
//
//   - system-wide resolution only: CPU aggregated over cores, memory
//     node-wide — "does not resolve resource use by job or by user";
//   - no batch awareness: no job marks in the output, so job attribution
//     must be reconstructed externally from accounting windows;
//   - no hardware performance counters: FLOPS are simply not measured
//     (§2: none of the stock tools monitor them);
//   - no Lustre/InfiniBand visibility: the io_* and net_ib_* key metrics
//     do not exist in the output;
//   - a different text format per subsystem (sar -u, sar -r, sar -n DEV),
//     "gathered and reported in many different formats" (§1.2).
//
// The comparison tests and BenchmarkBaselineSAR quantify what this
// costs: only two of the paper's eight key metrics survive, so six of
// the twelve figures cannot be produced at all from SAR data.
package sarbaseline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supremm/internal/procfs"
)

// CPULine is one `sar -u`-style record: whole-node CPU percentages.
type CPULine struct {
	Time                                int64
	UserPct, SysPct, IowaitPct, IdlePct float64
}

// MemLine is one `sar -r`-style record: node-wide memory.
type MemLine struct {
	Time                     int64
	UsedKB, FreeKB, CachedKB uint64
}

// NetLine is one `sar -n DEV`-style record per device.
type NetLine struct {
	Time           int64
	Device         string
	RxKBps, TxKBps float64
}

// Sampler emits SAR-format text from a node snapshot. Unlike the
// TACC_Stats monitor it keeps three separate writers with three
// different formats and needs the previous counter values internally
// (SAR reports rates, not raw counters).
type Sampler struct {
	cpuW, memW, netW io.Writer

	prevTime int64
	prevCPU  [4]uint64 // user+nice, sys+irq+softirq, iowait, idle
	prevNet  map[string][2]uint64
	started  bool
}

// NewSampler creates a Sampler writing the three SAR report streams.
func NewSampler(cpuW, memW, netW io.Writer) *Sampler {
	return &Sampler{cpuW: cpuW, memW: memW, netW: netW, prevNet: make(map[string][2]uint64)}
}

// Sample reads the snapshot and appends one record to each stream.
// The first call only primes the counters (SAR's first interval is
// discarded too).
func (s *Sampler) Sample(snap *procfs.Snapshot) error {
	var cpu [4]uint64
	if ts := snap.Type(procfs.TypeCPU); ts != nil {
		for _, dev := range ts.Devices() {
			cpu[0] += ts.Get(dev, "user") + ts.Get(dev, "nice")
			cpu[1] += ts.Get(dev, "system") + ts.Get(dev, "irq") + ts.Get(dev, "softirq")
			cpu[2] += ts.Get(dev, "iowait")
			cpu[3] += ts.Get(dev, "idle")
		}
	}
	nets := make(map[string][2]uint64)
	if ts := snap.Type(procfs.TypeNet); ts != nil {
		for _, dev := range ts.Devices() {
			nets[dev] = [2]uint64{ts.Get(dev, "rx_bytes"), ts.Get(dev, "tx_bytes")}
		}
	}

	if s.started {
		dt := float64(snap.Time - s.prevTime)
		if dt > 0 {
			var deltas [4]float64
			var total float64
			for i := range cpu {
				deltas[i] = float64(cpu[i] - s.prevCPU[i])
				total += deltas[i]
			}
			if total > 0 {
				if _, err := fmt.Fprintf(s.cpuW, "%d all %.2f %.2f %.2f %.2f\n",
					snap.Time, deltas[0]/total*100, deltas[1]/total*100,
					deltas[2]/total*100, deltas[3]/total*100); err != nil {
					return err
				}
			}
			for dev, cur := range nets {
				prev := s.prevNet[dev]
				rx := float64(cur[0]-prev[0]) / dt / 1024
				tx := float64(cur[1]-prev[1]) / dt / 1024
				if _, err := fmt.Fprintf(s.netW, "%d %s %.2f %.2f\n", snap.Time, dev, rx, tx); err != nil {
					return err
				}
			}
		}
	}

	// Memory is a gauge: report every sample (matching sar -r).
	var used, free, cached uint64
	if ts := snap.Type(procfs.TypeMem); ts != nil {
		for _, dev := range ts.Devices() {
			used += ts.Get(dev, "MemUsed")
			free += ts.Get(dev, "MemFree")
			cached += ts.Get(dev, "Cached")
		}
	}
	if _, err := fmt.Fprintf(s.memW, "%d %d %d %d\n", snap.Time, used, free, cached); err != nil {
		return err
	}

	s.prevTime = snap.Time
	s.prevCPU = cpu
	s.prevNet = nets
	s.started = true
	return nil
}

// ParseCPU parses a sar -u stream.
func ParseCPU(r io.Reader) ([]CPULine, error) {
	var out []CPULine
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		if len(f) != 6 || f[1] != "all" {
			return nil, fmt.Errorf("sar cpu line %d: malformed %q", lineNo, sc.Text())
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sar cpu line %d: bad time", lineNo)
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			vals[i], err = strconv.ParseFloat(f[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("sar cpu line %d: bad value %q", lineNo, f[2+i])
			}
		}
		out = append(out, CPULine{Time: ts, UserPct: vals[0], SysPct: vals[1], IowaitPct: vals[2], IdlePct: vals[3]})
	}
	return out, sc.Err()
}

// ParseMem parses a sar -r stream.
func ParseMem(r io.Reader) ([]MemLine, error) {
	var out []MemLine
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		if len(f) != 4 {
			return nil, fmt.Errorf("sar mem line %d: malformed %q", lineNo, sc.Text())
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sar mem line %d: bad time", lineNo)
		}
		vals := make([]uint64, 3)
		for i := 0; i < 3; i++ {
			vals[i], err = strconv.ParseUint(f[1+i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sar mem line %d: bad value %q", lineNo, f[1+i])
			}
		}
		out = append(out, MemLine{Time: ts, UsedKB: vals[0], FreeKB: vals[1], CachedKB: vals[2]})
	}
	return out, sc.Err()
}

// ParseNet parses a sar -n DEV stream.
func ParseNet(r io.Reader) ([]NetLine, error) {
	var out []NetLine
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		if len(f) != 4 {
			return nil, fmt.Errorf("sar net line %d: malformed %q", lineNo, sc.Text())
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sar net line %d: bad time", lineNo)
		}
		rx, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sar net line %d: bad rx", lineNo)
		}
		tx, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("sar net line %d: bad tx", lineNo)
		}
		out = append(out, NetLine{Time: ts, Device: f[1], RxKBps: rx, TxKBps: tx})
	}
	return out, sc.Err()
}

// CoveredMetrics lists which of the paper's eight key metrics a
// SAR-only deployment can populate. Hardware counters, Lustre client
// stats and InfiniBand counters are simply absent from sysstat, so
// cpu_flops, io_scratch_write, io_work_write, net_ib_tx, net_lnet_tx
// and mem_used_max (needs per-job peaks, which need job windows plus
// fine sampling of every node SAR aggregates away) cannot be filled.
func CoveredMetrics() []string {
	return []string{"cpu_idle", "mem_used"}
}

// MissingMetrics lists the key metrics SAR cannot provide.
func MissingMetrics() []string {
	return []string{
		"mem_used_max", "cpu_flops", "io_scratch_write",
		"io_work_write", "net_ib_tx", "net_lnet_tx",
	}
}

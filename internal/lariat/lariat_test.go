package lariat

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"supremm/internal/workload"
)

func job(app string, status workload.ExitStatus, idleMul float64) *workload.Job {
	apps := workload.DefaultApps()
	return &workload.Job{
		ID:    101,
		User:  &workload.User{Name: "alice"},
		App:   workload.AppByName(apps, app),
		Nodes: 4, Status: status,
		IdleMul: idleMul, Seed: 99,
	}
}

func TestSummarizeBasics(t *testing.T) {
	r := Summarize(job("namd", workload.Completed, 1), 16)
	if r.JobID != 101 || r.User != "alice" {
		t.Errorf("identity: %+v", r)
	}
	if !strings.Contains(r.Executable, "namd") {
		t.Errorf("exe = %q", r.Executable)
	}
	if r.MPIRanks != 64 {
		t.Errorf("ranks = %d, want 64 (fully subscribed)", r.MPIRanks)
	}
	if r.ExitCode != 0 {
		t.Errorf("exit = %d", r.ExitCode)
	}
	// Libraries include the app's MPI and the common base, sorted and
	// deduplicated.
	if !sort.StringsAreSorted(r.Libraries) {
		t.Errorf("libraries not sorted: %v", r.Libraries)
	}
	seen := map[string]bool{}
	for _, l := range r.Libraries {
		if seen[l] {
			t.Errorf("duplicate library %q", l)
		}
		seen[l] = true
	}
	if !seen["libmpi.so.1"] || !seen["libc.so.6"] {
		t.Errorf("missing expected libraries: %v", r.Libraries)
	}
}

func TestSummarizeUndersubscribed(t *testing.T) {
	// serialfarm at 91% idle should report far fewer ranks than cores —
	// the signal a support analyst uses for a Fig 5 diagnosis.
	r := Summarize(job("serialfarm", workload.Completed, 1), 16)
	if r.MPIRanks >= 16*4/2 {
		t.Errorf("ranks = %d, want heavily undersubscribed", r.MPIRanks)
	}
	if r.MPIRanks < 4 {
		t.Errorf("ranks = %d, at least one per node", r.MPIRanks)
	}
}

func TestSummarizeExitCodes(t *testing.T) {
	if r := Summarize(job("namd", workload.Failed, 1), 16); r.ExitCode == 0 {
		t.Error("failed job should have nonzero exit")
	}
	if r := Summarize(job("namd", workload.Timeout, 1), 16); r.ExitCode != 137 {
		t.Errorf("timeout exit = %d, want 137", r.ExitCode)
	}
	if r := Summarize(job("namd", workload.NodeFail, 1), 16); r.ExitCode != 255 {
		t.Errorf("node-fail exit = %d, want 255", r.ExitCode)
	}
}

func TestSummarizeDeterminism(t *testing.T) {
	a := Summarize(job("amber", workload.Failed, 1), 16)
	b := Summarize(job("amber", workload.Failed, 1), 16)
	if a.ExitCode != b.ExitCode || a.MPIRanks != b.MPIRanks {
		t.Error("same job should summarize identically")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		Summarize(job("namd", workload.Completed, 1), 16),
		Summarize(job("datamover", workload.Failed, 1), 16),
	}
	recs[1].JobID = 202
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].JobID != 101 || got[1].JobID != 202 {
		t.Errorf("round trip: %+v", got)
	}
	if len(got[0].Libraries) != len(recs[0].Libraries) {
		t.Error("libraries lost in round trip")
	}
	if _, err := Read(strings.NewReader("{oops")); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestByJob(t *testing.T) {
	recs := []Record{{JobID: 1}, {JobID: 5}}
	m := ByJob(recs)
	if len(m) != 2 || m[5].JobID != 5 {
		t.Errorf("ByJob: %+v", m)
	}
}

func TestUnknownAppStillGetsCommonLibs(t *testing.T) {
	apps := workload.DefaultApps()
	j := &workload.Job{
		ID: 1, User: &workload.User{Name: "u"}, App: apps[0], Nodes: 1, Seed: 1,
	}
	j.App = &workload.App{Name: "mystery", Profile: apps[0].Profile}
	r := Summarize(j, 16)
	if len(r.Libraries) < 3 {
		t.Errorf("unknown app libraries: %v", r.Libraries)
	}
}

// Package lariat reproduces the Lariat tool (§1.3): unified summary
// data on the execution of a job, such as which executable ran, which
// shared libraries it loaded, and key environment facts. Records are
// JSON lines, one per job, emitted by the job epilog.
package lariat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"supremm/internal/workload"
)

// Record is one job's execution summary.
type Record struct {
	JobID      int64    `json:"job_id"`
	User       string   `json:"user"`
	Executable string   `json:"exe"`
	Libraries  []string `json:"libs"`
	MPIRanks   int      `json:"mpi_ranks"`
	Threads    int      `json:"threads_per_rank"`
	Queue      string   `json:"queue"`
	WorkDir    string   `json:"workdir"`
	ExitCode   int      `json:"exit_code"`
}

// libCatalogue maps application archetypes to the shared libraries a
// Lariat scan would find in their address space.
var libCatalogue = map[string][]string{
	"namd":       {"libmpi.so.1", "libfftw3f.so.3", "libtcl8.5.so", "libstdc++.so.6"},
	"amber":      {"libmpi.so.1", "libnetcdf.so.6", "libgfortran.so.3", "libblas.so.3"},
	"gromacs":    {"libmpi.so.1", "libfftw3f.so.3", "libxml2.so.2", "libgomp.so.1"},
	"wrf":        {"libmpi.so.1", "libnetcdf.so.6", "libhdf5.so.7", "libgfortran.so.3"},
	"milc":       {"libmpi.so.1", "liblapack.so.3", "libblas.so.3"},
	"enzo":       {"libmpi.so.1", "libhdf5.so.7", "libstdc++.so.6"},
	"vasp":       {"libmpi.so.1", "libmkl_core.so", "libmkl_intel_lp64.so", "libgfortran.so.3"},
	"openfoam":   {"libmpi.so.1", "libOpenFOAM.so", "libstdc++.so.6"},
	"espresso":   {"libmpi.so.1", "libmkl_core.so", "libgfortran.so.3", "libfftw3.so.3"},
	"seismic3d":  {"libmpi.so.1", "libfftw3.so.3", "libgfortran.so.3"},
	"serialfarm": {"libc.so.6", "libpthread.so.0"},
	"datamover":  {"libc.so.6", "liblustreapi.so.1", "libz.so.1"},
	"matpy":      {"libpython2.7.so", "libmkl_core.so", "libhdf5.so.7"},
}

// commonLibs appear in every process image.
var commonLibs = []string{"libc.so.6", "libm.so.6", "libpthread.so.0"}

// Summarize builds the Lariat record for a finished job. coresPerNode
// sizes the rank/thread layout; for undersubscribed archetypes the rank
// count reflects the idle fraction (that is what a support analyst
// would see in Lariat when diagnosing a Fig 5 user).
func Summarize(j *workload.Job, coresPerNode int) Record {
	rng := rand.New(rand.NewSource(j.Seed ^ 0x1a71a7))
	libs := append([]string(nil), commonLibs...)
	libs = append(libs, libCatalogue[j.App.Name]...)
	sort.Strings(libs)
	libs = dedupe(libs)

	// Rank layout: fully-subscribed codes run one rank per core; the
	// idle-heavy archetypes run far fewer.
	ranksPerNode := coresPerNode
	idle := j.App.Profile.CPUIdleFrac * j.IdleMul
	if idle > 0.5 {
		ranksPerNode = int(float64(coresPerNode)*(1-idle) + 0.5)
		if ranksPerNode < 1 {
			ranksPerNode = 1
		}
	}
	exitCode := 0
	switch j.Status {
	case workload.Failed:
		exitCode = 1 + rng.Intn(126)
	case workload.Timeout:
		exitCode = 137 // SIGKILL from the batch system
	case workload.NodeFail:
		exitCode = 255
	}
	return Record{
		JobID:      j.ID,
		User:       j.User.Name,
		Executable: "/work/apps/" + j.App.Name + "/bin/" + j.App.Name,
		Libraries:  libs,
		MPIRanks:   ranksPerNode * j.Nodes,
		Threads:    1,
		Queue:      "normal",
		WorkDir:    fmt.Sprintf("/scratch/%s/run%d", j.User.Name, j.ID),
		ExitCode:   exitCode,
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Write appends records as JSON lines.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines Lariat file.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lariat: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ByJob indexes records by job ID for the ingest join.
func ByJob(records []Record) map[int64]Record {
	m := make(map[int64]Record, len(records))
	for _, r := range records {
		m[r.JobID] = r
	}
	return m
}

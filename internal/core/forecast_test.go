package core

import (
	"math"
	"testing"

	"supremm/internal/store"
)

func TestForecasterBasics(t *testing.T) {
	r, _ := realms(t)
	f, err := r.NewForecaster("cpu_flops", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Rho is 1 at zero offset and decays monotonically.
	if got := f.Rho(0); got != 1 {
		t.Errorf("rho(0) = %v", got)
	}
	prev := 1.0
	for _, off := range []float64{10, 30, 100, 500, 1000, 5000} {
		rho := f.Rho(off)
		if rho < 0 || rho > 1 {
			t.Fatalf("rho(%v) = %v out of [0,1]", off, rho)
		}
		if rho > prev+1e-9 {
			t.Errorf("rho not decaying at %v: %v > %v", off, rho, prev)
		}
		prev = rho
	}
}

func TestForecastInterpolatesBetweenCurrentAndMean(t *testing.T) {
	r, _ := realms(t)
	f, err := r.NewForecaster("cpu_flops", 10)
	if err != nil {
		t.Fatal(err)
	}
	current := f.mean * 2 // a hot moment
	shortPred, shortSE := f.Forecast(current, 10)
	longPred, longSE := f.Forecast(current, 50000)
	// Short horizon: prediction stays near the current value.
	if math.Abs(shortPred-current) > math.Abs(shortPred-f.mean) {
		t.Errorf("10-min forecast %v should be closer to current %v than mean %v",
			shortPred, current, f.mean)
	}
	// Long horizon: falls back to the ensemble mean, as §4.3.4 reads
	// Table 1.
	if math.Abs(longPred-f.mean) > 0.05*f.mean {
		t.Errorf("long forecast %v should approach mean %v", longPred, f.mean)
	}
	// Uncertainty grows with horizon toward sigma.
	if shortSE >= longSE {
		t.Errorf("se should grow with horizon: %v vs %v", shortSE, longSE)
	}
	if longSE > f.sigma*1.01 {
		t.Errorf("long se %v should not exceed sigma %v", longSE, f.sigma)
	}
}

func TestForecastSkillBeatsClimatologyAtShortOffsets(t *testing.T) {
	// The whole point of the persistence model: at 10-30 minutes the
	// forecast is much better than the ensemble mean; at very long
	// offsets the advantage vanishes.
	r, _ := realms(t)
	for _, metric := range []string{"cpu_flops", "mem_used"} {
		f, err := r.NewForecaster(metric, 10)
		if err != nil {
			t.Fatal(err)
		}
		short, err := f.Evaluate(r.Series, 10)
		if err != nil {
			t.Fatal(err)
		}
		if short.Skill < 0.3 {
			t.Errorf("%s: 10-min skill = %v, want strong", metric, short.Skill)
		}
		long, err := f.Evaluate(r.Series, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if long.Skill > short.Skill {
			t.Errorf("%s: skill should decay with offset (%v -> %v)", metric, short.Skill, long.Skill)
		}
		if long.Skill < -0.2 {
			t.Errorf("%s: long-offset skill = %v, should degrade to ~climatology, not worse", metric, long.Skill)
		}
	}
}

func TestForecasterErrors(t *testing.T) {
	r, _ := realms(t)
	if _, err := r.NewForecaster("bogus", 10); err == nil {
		t.Error("unknown metric should error")
	}
	if _, err := r.NewForecaster("active_nodes", 10); err == nil {
		t.Error("non-persistence metric should error")
	}
	short := NewRealm("x", 16, 32, 100, store.New(), make([]store.SystemSample, 5))
	if _, err := short.NewForecaster("cpu_flops", 10); err == nil {
		t.Error("short series should error")
	}
	f, err := r.NewForecaster("cpu_flops", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Evaluate(r.Series, 0.1); err == nil {
		t.Error("sub-step offset should error")
	}
	if _, err := f.Evaluate(r.Series, 1e9); err == nil {
		t.Error("beyond-series offset should error")
	}
	if _, err := f.Evaluate(nil, 10); err == nil {
		t.Error("empty series should error")
	}
}

func TestScheduleHint(t *testing.T) {
	// §4.3.4 / §5: "add high I/O jobs when I/O is relatively free" —
	// the hint must be favorable exactly when the forecast is below the
	// series mean.
	r, _ := realms(t)
	h, err := r.Hint("io_scratch_write", 30)
	if err != nil {
		t.Fatal(err)
	}
	if h.Metric != "io_scratch_write" {
		t.Errorf("metric = %q", h.Metric)
	}
	wantFavorable := h.ForecastMean < h.FleetMean
	if h.Favorable != wantFavorable {
		t.Errorf("favorable = %v, forecast %v vs fleet %v", h.Favorable, h.ForecastMean, h.FleetMean)
	}
	if math.IsNaN(h.Headroom) {
		t.Error("headroom is NaN")
	}
	if _, err := r.Hint("bogus", 30); err == nil {
		t.Error("unknown metric should error")
	}
}

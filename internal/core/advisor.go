package core

import (
	"fmt"
	"math"
	"sort"

	"supremm/internal/store"
)

// SystemChoice is one row of the §4.3.1 user report: how efficiently an
// application runs on each system, so users "will be able to determine
// which systems their jobs will execute on with maximum efficiency" and
// centers can "provide incentives for users to run on architectures
// best suited for their application" (§5).
type SystemChoice struct {
	App  string
	Rows []SystemEfficiency
	// Best is the recommended cluster (highest efficiency with enough
	// evidence), empty when no system has data.
	Best string
}

// SystemEfficiency is one (app, cluster) efficiency measurement.
// Ranking uses RelativeIdle — the app's idle normalized by the fleet
// mean, i.e. exactly the Fig 3 radar axis — because it isolates how the
// architecture suits the code from how busy or sloppy that machine's
// general population happens to be. Absolute efficiency and per-core
// flops are reported alongside for context.
type SystemEfficiency struct {
	Cluster    string
	Jobs       int
	NodeHours  float64
	Efficiency float64 // 1 - node-hour-weighted cpu idle (absolute)
	// RelativeIdle is app idle / fleet idle; < 1 means the code idles
	// less than this machine's average job.
	RelativeIdle   float64
	FlopsGF        float64 // weighted mean GF/s per node
	FlopsPerCoreGF float64
}

// minAdviceJobs is the evidence floor below which a system is listed
// but not recommended.
const minAdviceJobs = 10

// AdviseSystem compares one application across realms, ranking by
// fleet-relative idle (the Fig 3 axis).
func AdviseSystem(app string, realms ...*Realm) SystemChoice {
	out := SystemChoice{App: app}
	bestRel := math.Inf(1)
	for _, r := range realms {
		f := r.JobFilter()
		f.App = app
		idle := r.Store.Aggregate(store.MetricCPUIdle, f)
		flops := r.Store.Aggregate(store.MetricFlops, f)
		row := SystemEfficiency{
			Cluster:      r.Cluster,
			Jobs:         idle.N,
			NodeHours:    idle.NodeHours,
			RelativeIdle: math.NaN(),
		}
		if idle.N > 0 {
			row.Efficiency = 1 - idle.Mean
			row.FlopsGF = flops.Mean
			row.FlopsPerCoreGF = flops.Mean / float64(r.CoresPerNode)
			if fleet := r.FleetMean(store.MetricCPUIdle); fleet > 0 {
				row.RelativeIdle = idle.Mean / fleet
			}
		}
		out.Rows = append(out.Rows, row)
		if row.Jobs >= minAdviceJobs && !math.IsNaN(row.RelativeIdle) && row.RelativeIdle < bestRel {
			bestRel = row.RelativeIdle
			out.Best = r.Cluster
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		ri, rj := out.Rows[i].RelativeIdle, out.Rows[j].RelativeIdle
		if math.IsNaN(rj) {
			return true
		}
		if math.IsNaN(ri) {
			return false
		}
		return ri < rj
	})
	return out
}

// UserAdvice aggregates system advice over a user's whole application
// mix, weighted by the user's node-hours per app.
type UserAdvice struct {
	User string
	// PerApp holds the per-application comparisons for the user's codes.
	PerApp []SystemChoice
	// Recommended is the cluster whose node-hour-weighted efficiency
	// over the user's mix is highest.
	Recommended string
	// ExpectedEfficiency maps cluster -> the user's mix-weighted
	// efficiency there.
	ExpectedEfficiency map[string]float64
}

// AdviseUser builds the §4.3.1 comparative report for one user. The
// user's app mix and weights come from the first realm that has their
// jobs; efficiencies per app come from all realms.
func AdviseUser(user string, realms ...*Realm) (UserAdvice, error) {
	advice := UserAdvice{User: user, ExpectedEfficiency: make(map[string]float64)}
	// The user's mix: node-hours per app wherever they ran.
	mix := make(map[string]float64)
	for _, r := range realms {
		f := r.JobFilter()
		f.User = user
		for _, g := range r.Store.GroupBy(store.ByApp, nil, f) {
			mix[g.Key] += g.NodeHours
		}
	}
	if len(mix) == 0 {
		return advice, fmt.Errorf("core: user %q has no analyzed jobs", user)
	}
	apps := make([]string, 0, len(mix))
	for app := range mix {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool {
		if mix[apps[i]] != mix[apps[j]] {
			return mix[apps[i]] > mix[apps[j]]
		}
		return apps[i] < apps[j]
	})

	// Mix-weighted relative idle per cluster, using fleet-wide per-app
	// measurements (the user's own runs may not exist on the candidate
	// cluster — that is the whole point of the advice). The reported
	// ExpectedEfficiency uses absolute efficiency for readability; the
	// recommendation uses relative idle (architecture fit).
	relByCluster := make(map[string]map[string]float64) // cluster -> app -> rel idle
	effByCluster := make(map[string]map[string]float64)
	for _, app := range apps {
		choice := AdviseSystem(app, realms...)
		advice.PerApp = append(advice.PerApp, choice)
		for _, row := range choice.Rows {
			if row.Jobs < minAdviceJobs || math.IsNaN(row.RelativeIdle) {
				continue
			}
			if relByCluster[row.Cluster] == nil {
				relByCluster[row.Cluster] = make(map[string]float64)
				effByCluster[row.Cluster] = make(map[string]float64)
			}
			relByCluster[row.Cluster][app] = row.RelativeIdle
			effByCluster[row.Cluster][app] = row.Efficiency
		}
	}
	best := math.Inf(1)
	for clusterName, relByApp := range relByCluster {
		var relNum, effNum, den float64
		for app, w := range mix {
			if rel, ok := relByApp[app]; ok {
				relNum += w * rel
				effNum += w * effByCluster[clusterName][app]
				den += w
			}
		}
		if den == 0 {
			continue
		}
		advice.ExpectedEfficiency[clusterName] = effNum / den
		if rel := relNum / den; rel < best {
			best = rel
			advice.Recommended = clusterName
		}
	}
	return advice, nil
}

package core

import (
	"math"
	"testing"

	"supremm/internal/stats"
	"supremm/internal/store"
)

func TestMemoryBySciencReport(t *testing.T) {
	r, _ := realms(t)
	rows := r.MemoryByScience()
	if len(rows) < 5 {
		t.Fatalf("only %d science rows", len(rows))
	}
	for i, row := range rows {
		if row.MemPerCoreGB <= 0 || row.MemPerCoreGB > r.MemPerNodeGB/float64(r.CoresPerNode) {
			t.Errorf("%s: mem/core = %v out of range", row.Science, row.MemPerCoreGB)
		}
		if i > 0 && row.NodeHours > rows[i-1].NodeHours {
			t.Error("rows not ordered by node-hours")
		}
	}
}

func TestCPUHoursReport(t *testing.T) {
	r, _ := realms(t)
	h := r.CPUHoursReport()
	if h.TotalCoreHours <= 0 {
		t.Fatal("no core hours")
	}
	sum := h.UserCoreHours + h.SysCoreHours + h.IdleCoreHours
	if sum > h.TotalCoreHours*1.001 {
		t.Errorf("split %v exceeds total %v", sum, h.TotalCoreHours)
	}
	// User time dominates on a production machine; idle ~10%.
	if h.UserCoreHours < 0.6*h.TotalCoreHours {
		t.Errorf("user share = %v, want dominant", h.UserCoreHours/h.TotalCoreHours)
	}
	idleShare := h.IdleCoreHours / h.TotalCoreHours
	if idleShare < 0.03 || idleShare > 0.25 {
		t.Errorf("idle share = %v, want ~0.10", idleShare)
	}
}

func TestLustreByMount(t *testing.T) {
	// Fig 7c: scratch carries the bulk of the write traffic (purged,
	// huge quota); work is small (200 GB quota).
	r, _ := realms(t)
	rows := r.LustreByMount()
	if len(rows) != 3 {
		t.Fatalf("mount rows = %d", len(rows))
	}
	byName := map[string]LustreMountReport{}
	for _, row := range rows {
		byName[row.Mount] = row
		if row.PeakMBps < row.MeanMBps {
			t.Errorf("%s: peak %v < mean %v", row.Mount, row.PeakMBps, row.MeanMBps)
		}
	}
	if byName["scratch"].MeanMBps <= byName["work"].MeanMBps {
		t.Errorf("scratch traffic %v should exceed work %v",
			byName["scratch"].MeanMBps, byName["work"].MeanMBps)
	}
}

func TestSeriesDaily(t *testing.T) {
	r, _ := realms(t)
	daily := r.SeriesDaily("active_nodes")
	if len(daily) < 28 || len(daily) > 32 {
		t.Fatalf("daily points = %d for a 30-day run", len(daily))
	}
	for i := 1; i < len(daily); i++ {
		if daily[i].Time <= daily[i-1].Time {
			t.Fatal("daily series not increasing in time")
		}
	}
	if r.SeriesDaily("bogus_metric") != nil {
		t.Error("unknown metric should return nil")
	}
}

func TestActiveNodesReportReproducesFig8(t *testing.T) {
	r, _ := realms(t)
	a := r.ActiveNodesReport()
	if a.MaxActive != 128 {
		t.Errorf("max active = %v, want 128", a.MaxActive)
	}
	// The default config injects shutdowns after day 30; a 30-day run
	// sees none, so the minimum should stay near full. The fixture runs
	// exactly 30 days with DefaultShutdowns placing one at day 30 —
	// boundary-exclusive, so expect no zero dips here.
	if a.MeanActive < 110 {
		t.Errorf("mean active = %v, want near 128", a.MeanActive)
	}
	if a.TotalSamples != len(r.Series) {
		t.Error("sample count mismatch")
	}
}

func TestFlopsReportReproducesFig9(t *testing.T) {
	r, _ := realms(t)
	f := r.FlopsReport()
	if f.MachinePeakTF <= 0 {
		t.Fatal("no machine peak")
	}
	// "actual performance was less than 20 TF [of 579]" — i.e. mean
	// under ~4% of peak; "even peak values were less than 50 TF" — under
	// ~10% of peak.
	if f.MeanFraction <= 0 || f.MeanFraction > 0.10 {
		t.Errorf("mean fraction of peak = %v, want a few percent", f.MeanFraction)
	}
	// At 48 nodes the aggregate's relative fluctuations are ~9x larger
	// than at Ranger's 3936 (sqrt scaling), so the peak band is wider
	// than the paper's <50/579.
	if f.PeakFraction > 0.35 {
		t.Errorf("peak fraction of peak = %v, want well under peak", f.PeakFraction)
	}
	if f.PeakTFlops < f.MeanTFlops {
		t.Error("peak below mean")
	}
}

func TestFlopsDistributionReproducesFig10(t *testing.T) {
	r, _ := realms(t)
	kde, curve := r.FlopsDistribution(256)
	if len(curve) != 256 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// The mode sits near the delivered mean, far below machine peak.
	mode := kde.Mode()
	if mode > 0.1*r.PeakTFlops {
		t.Errorf("flops mode = %v TF, want well under peak %v", mode, r.PeakTFlops)
	}
	// Density integrates to ~1.
	var integral float64
	for i := 1; i < len(curve); i++ {
		integral += 0.5 * (curve[i].Density + curve[i-1].Density) * (curve[i].X - curve[i-1].X)
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("flops density integrates to %v", integral)
	}
}

func TestMemoryReportReproducesFig11And12(t *testing.T) {
	ranger, ls4 := realms(t)
	rm, lm := ranger.MemoryReport(), ls4.MemoryReport()
	// Ranger: mean < 50% of 32 GB; job-max mean ~50%.
	if rm.MeanFraction > 0.5 {
		t.Errorf("Ranger mem fraction = %v, want < 0.5", rm.MeanFraction)
	}
	if rm.JobMaxMeanGB > 0.75*rm.CapacityGB {
		t.Errorf("Ranger job-max mean = %v of %v, want ~half", rm.JobMaxMeanGB, rm.CapacityGB)
	}
	// LS4 runs fuller: higher fraction, job max approaching capacity.
	if lm.MeanFraction <= rm.MeanFraction {
		t.Errorf("LS4 fraction %v should exceed Ranger %v", lm.MeanFraction, rm.MeanFraction)
	}
	if lm.JobMaxMeanGB <= rm.JobMaxMeanGB*lm.CapacityGB/rm.CapacityGB*0.8 {
		t.Errorf("LS4 job-max mean %v not relatively higher than Ranger %v", lm.JobMaxMeanGB, rm.JobMaxMeanGB)
	}

	used, maxCurve := ranger.MemoryDistribution(256)
	if used == nil || maxCurve == nil {
		t.Fatal("no memory distribution")
	}
	// Fig 12: the max curve's mass sits right of the used curve's.
	center := func(c []stats.CurvePoint) float64 {
		var num, den float64
		for _, p := range c {
			num += p.X * p.Density
			den += p.Density
		}
		return num / den
	}
	if center(maxCurve) <= center(used) {
		t.Errorf("mem_used_max center %v should exceed mem_used center %v",
			center(maxCurve), center(used))
	}
}

func TestMemoryDistributionEmptyRealm(t *testing.T) {
	empty := NewRealm("x", 16, 32, 100, store.New(), nil)
	used, max := empty.MemoryDistribution(64)
	if used != nil || max != nil {
		t.Error("empty realm should produce nil distributions")
	}
}

package core

import (
	"sort"

	"supremm/internal/store"
)

// UserEfficiency is one point of the Fig 4 scatter: a user's total
// node-hours against the node-hours "wasted" with the CPU idle.
type UserEfficiency struct {
	User string
	// NodeHours is the user's total consumption.
	NodeHours float64
	// WastedNodeHours is NodeHours * weighted idle fraction — "those
	// spent with an idle CPU".
	WastedNodeHours float64
	// IdleFrac is the node-hour-weighted CPU idle fraction.
	IdleFrac float64
	Jobs     int
}

// Efficiency returns 1 - IdleFrac, the paper's definition ("we define
// efficiency to be the percentage of time not spent in CPU idle").
func (u UserEfficiency) Efficiency() float64 { return 1 - u.IdleFrac }

// EfficiencyReport computes the Fig 4 scatter for every user, ordered
// by node-hours descending.
func (r *Realm) EfficiencyReport() []UserEfficiency {
	groups := r.Store.GroupBy(store.ByUser, []store.Metric{store.MetricCPUIdle}, r.JobFilter())
	out := make([]UserEfficiency, 0, len(groups))
	for _, g := range groups {
		idle := g.Mean[store.MetricCPUIdle]
		out = append(out, UserEfficiency{
			User:            g.Key,
			NodeHours:       g.NodeHours,
			WastedNodeHours: g.NodeHours * idle,
			IdleFrac:        idle,
			Jobs:            g.N,
		})
	}
	return out
}

// FleetEfficiency returns the node-hour-weighted efficiency over all
// jobs — the red line of Fig 4 (~90% on Ranger, ~85% on Lonestar4).
func (r *Realm) FleetEfficiency() float64 {
	return 1 - r.FleetMean(store.MetricCPUIdle)
}

// WorstUsers returns the most idle users above a node-hour floor — the
// circled users of Figs 4-5 (87% and 89% idle on the two machines).
func (r *Realm) WorstUsers(n int, minNodeHours float64) []UserEfficiency {
	all := r.EfficiencyReport()
	var big []UserEfficiency
	for _, u := range all {
		if u.NodeHours >= minNodeHours {
			big = append(big, u)
		}
	}
	sort.Slice(big, func(i, j int) bool {
		if big[i].IdleFrac != big[j].IdleFrac {
			return big[i].IdleFrac > big[j].IdleFrac
		}
		return big[i].User < big[j].User
	})
	if n > len(big) {
		n = len(big)
	}
	return big[:n]
}

// WastedNodeHoursTotal sums wasted node-hours over all users.
func (r *Realm) WastedNodeHoursTotal() float64 {
	var total float64
	for _, u := range r.EfficiencyReport() {
		total += u.WastedNodeHours
	}
	return total
}

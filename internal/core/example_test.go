package core_test

import (
	"fmt"

	"supremm/internal/core"
)

func ExampleParseQuery() {
	q, err := core.ParseQuery("group=app metrics=cpu_idle,cpu_flops app=namd limit=5 normalize=true")
	if err != nil {
		panic(err)
	}
	fmt.Println("group:", q.GroupBy)
	fmt.Println("metrics:", q.Metrics)
	fmt.Println("app filter:", q.Filter.App)
	fmt.Println("normalize:", q.Normalize)
	// Output:
	// group: 1
	// metrics: [cpu_idle cpu_flops]
	// app filter: namd
	// normalize: true
}

func ExamplePersistenceMetrics() {
	// The five system metrics Table 1 analyzes, in column order.
	fmt.Println(core.PersistenceMetrics())
	fmt.Println(core.PersistenceOffsetsMin())
	// Output:
	// [cpu_flops mem_used io_scratch_write net_ib_tx cpu_idle]
	// [10 30 100 500 1000]
}

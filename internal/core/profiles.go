package core

import (
	"math"
	"sort"

	"supremm/internal/store"
)

// Profile is one radar chart: an entity's node-hour-weighted mean of
// each key metric divided by the fleet mean, so 1.0 on every axis is
// "the average job" and the chart of a typical user "would appear as a
// perfect octagon with each vertex at unity" (§4.3.1).
type Profile struct {
	Key       string // user name or app name
	Cluster   string
	N         int // jobs
	NodeHours float64
	// Normalized holds value/fleet-mean per metric; Raw the weighted
	// means themselves.
	Normalized map[store.Metric]float64
	Raw        map[store.Metric]float64
}

// MaxAxis returns the largest normalized value (radar chart scale).
func (p Profile) MaxAxis() float64 {
	max := 0.0
	for _, v := range p.Normalized {
		if v > max {
			max = v
		}
	}
	return max
}

// profileFor computes the profile of one filtered sub-population against
// the realm's fleet means.
func (r *Realm) profileFor(key string, f store.Filter, metrics []store.Metric) Profile {
	p := Profile{
		Key:        key,
		Cluster:    r.Cluster,
		Normalized: make(map[store.Metric]float64, len(metrics)),
		Raw:        make(map[store.Metric]float64, len(metrics)),
	}
	for _, m := range metrics {
		agg := r.Store.Aggregate(m, f)
		p.N = agg.N
		p.NodeHours = agg.NodeHours
		p.Raw[m] = agg.Mean
		fleet := r.FleetMean(m)
		if fleet != 0 && !math.IsNaN(fleet) {
			p.Normalized[m] = agg.Mean / fleet
		} else {
			p.Normalized[m] = math.NaN()
		}
	}
	return p
}

// UserProfile computes one user's Fig 2-style profile over the eight
// key metrics.
func (r *Realm) UserProfile(user string) Profile {
	f := r.JobFilter()
	f.User = user
	return r.profileFor(user, f, store.KeyMetrics())
}

// TopUserProfiles returns profiles of the n heaviest users by
// node-hours — Fig 2's "5 heavy users of Ranger".
func (r *Realm) TopUserProfiles(n int) []Profile {
	groups := r.Store.GroupBy(store.ByUser, nil, r.JobFilter())
	if n > len(groups) {
		n = len(groups)
	}
	out := make([]Profile, 0, n)
	for _, g := range groups[:n] {
		out = append(out, r.UserProfile(g.Key))
	}
	return out
}

// AppProfile computes one application's Fig 3-style profile.
func (r *Realm) AppProfile(app string) Profile {
	f := r.JobFilter()
	f.App = app
	return r.profileFor(app, f, store.KeyMetrics())
}

// AppProfiles profiles a list of applications (e.g. the three MD codes
// of Fig 3).
func (r *Realm) AppProfiles(apps []string) []Profile {
	out := make([]Profile, 0, len(apps))
	for _, a := range apps {
		out = append(out, r.AppProfile(a))
	}
	return out
}

// ProfileDistance is the L2 distance between two profiles over their
// common metrics, used to quantify Fig 3's observation that "the NAMD
// usage pattern on Ranger and Lonestar4 is very similar whereas GROMACS
// and AMBER usage is different on the two clusters".
func ProfileDistance(a, b Profile) float64 {
	var ss float64
	n := 0
	for m, va := range a.Normalized {
		vb, ok := b.Normalized[m]
		if !ok || math.IsNaN(va) || math.IsNaN(vb) {
			continue
		}
		d := va - vb
		ss += d * d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(ss / float64(n))
}

// AnomalousUsers returns users whose normalized value of the metric
// exceeds the threshold, heaviest consumers first — the §4.3.3 support-
// staff report ("jobs or user with anomalous or inefficient resource
// use patterns"). minNodeHours excludes trivial users.
func (r *Realm) AnomalousUsers(m store.Metric, threshold, minNodeHours float64) []Profile {
	fleet := r.FleetMean(m)
	if fleet == 0 || math.IsNaN(fleet) {
		return nil
	}
	groups := r.Store.GroupBy(store.ByUser, []store.Metric{m}, r.JobFilter())
	var out []Profile
	for _, g := range groups {
		if g.NodeHours < minNodeHours {
			continue
		}
		if g.Mean[m]/fleet >= threshold {
			out = append(out, r.UserProfile(g.Key))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeHours > out[j].NodeHours })
	return out
}

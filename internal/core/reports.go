package core

import (
	"math"

	"supremm/internal/stats"
	"supremm/internal/store"
)

// ScienceMemory is one row of the Fig 7a report: average memory per
// core broken up by parent science.
type ScienceMemory struct {
	Science      string
	MemPerCoreGB float64
	NodeHours    float64
	Jobs         int
}

// MemoryByScience reproduces Fig 7a.
func (r *Realm) MemoryByScience() []ScienceMemory {
	groups := r.Store.GroupBy(store.ByScience, []store.Metric{store.MetricMemUsed}, r.JobFilter())
	out := make([]ScienceMemory, 0, len(groups))
	for _, g := range groups {
		out = append(out, ScienceMemory{
			Science:      g.Key,
			MemPerCoreGB: g.Mean[store.MetricMemUsed] / float64(r.CoresPerNode),
			NodeHours:    g.NodeHours,
			Jobs:         g.N,
		})
	}
	return out
}

// CPUHours is the Fig 7b report: core-hours split into user, system and
// idle over the realm.
type CPUHours struct {
	TotalCoreHours float64
	UserCoreHours  float64
	SysCoreHours   float64
	IdleCoreHours  float64
}

// CPUHoursReport reproduces Fig 7b from the job records.
func (r *Realm) CPUHoursReport() CPUHours {
	f := r.JobFilter()
	var out CPUHours
	for _, rec := range r.Store.Records(f) {
		coreHours := rec.NodeHours() * float64(r.CoresPerNode)
		out.TotalCoreHours += coreHours
		out.UserCoreHours += coreHours * rec.CPUUserFrac
		out.SysCoreHours += coreHours * rec.CPUSysFrac
		out.IdleCoreHours += coreHours * rec.CPUIdleFrac
	}
	return out
}

// LustreMountReport is the Fig 7c report: filesystem traffic per mount.
type LustreMountReport struct {
	Mount    string
	MeanMBps float64
	PeakMBps float64
}

// LustreByMount reproduces Fig 7c from the system series.
func (r *Realm) LustreByMount() []LustreMountReport {
	mounts := []struct {
		name string
		col  func(store.SystemSample) float64
	}{
		{"scratch", func(s store.SystemSample) float64 { return s.ScratchMBps }},
		{"share", func(s store.SystemSample) float64 { return s.ShareMBps }},
		{"work", func(s store.SystemSample) float64 { return s.WorkMBps }},
	}
	out := make([]LustreMountReport, 0, len(mounts))
	for _, m := range mounts {
		var sum, peak float64
		for _, s := range r.Series {
			v := m.col(s)
			sum += v
			if v > peak {
				peak = v
			}
		}
		mean := math.NaN()
		if len(r.Series) > 0 {
			mean = sum / float64(len(r.Series))
		}
		out = append(out, LustreMountReport{Mount: m.name, MeanMBps: mean, PeakMBps: peak})
	}
	return out
}

// TimePoint is one point of a downsampled system time series.
type TimePoint struct {
	Time  int64
	Value float64
}

// SeriesDaily downsamples a named series column to daily means —
// the rendering resolution of Figs 8, 9 and 11.
func (r *Realm) SeriesDaily(name string) []TimePoint {
	col := store.SeriesColumn(r.Series, name)
	if col == nil {
		return nil
	}
	var out []TimePoint
	var day int64 = -1
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, TimePoint{Time: day * 86400, Value: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for i, s := range r.Series {
		d := s.Time / 86400
		if d != day {
			flush()
			day = d
		}
		sum += col[i]
		n++
	}
	flush()
	return out
}

// FlopsDistribution reproduces Fig 10: the kernel density of the
// cluster FLOPS series. Returns the KDE and its curve over the support.
func (r *Realm) FlopsDistribution(points int) (*stats.KDE, []stats.CurvePoint) {
	col := store.SeriesColumn(r.Series, "total_tflops")
	kde := stats.NewKDE(col)
	return kde, kde.SupportCurve(points)
}

// MemoryDistribution reproduces Fig 12: kernel densities of the
// job-level mem_used (black curve) and mem_used_max (red curve).
func (r *Realm) MemoryDistribution(points int) (used, max []stats.CurvePoint) {
	f := r.JobFilter()
	uVals, _ := r.Store.Values(store.MetricMemUsed, f)
	mVals, _ := r.Store.Values(store.MetricMemUsedMax, f)
	if len(uVals) == 0 {
		return nil, nil
	}
	return stats.NewKDE(uVals).SupportCurve(points), stats.NewKDE(mVals).SupportCurve(points)
}

// FlopsSummary describes the delivered-FLOPS headline of Fig 9/10: the
// long-run mean, the observed peak, and both as fractions of the
// benchmarked machine peak ("actual performance was less than 20 TF
// [of] 579 TF").
type FlopsSummary struct {
	MeanTFlops    float64
	PeakTFlops    float64
	MachinePeakTF float64
	MeanFraction  float64
	PeakFraction  float64
}

// FlopsReport computes the Fig 9 headline numbers.
func (r *Realm) FlopsReport() FlopsSummary {
	d := store.SeriesSummary(r.Series, "total_tflops")
	out := FlopsSummary{
		MeanTFlops:    d.Mean,
		PeakTFlops:    d.Max,
		MachinePeakTF: r.PeakTFlops,
	}
	if r.PeakTFlops > 0 {
		out.MeanFraction = d.Mean / r.PeakTFlops
		out.PeakFraction = d.Max / r.PeakTFlops
	}
	return out
}

// MemorySummary is the Fig 11/12 headline: mean and peak memory per
// node against capacity.
type MemorySummary struct {
	MeanGB       float64
	PeakGB       float64
	CapacityGB   float64
	MeanFraction float64
	// JobMaxMeanGB is the node-hour-weighted mean of per-job peak
	// memory (the red curve's center of mass).
	JobMaxMeanGB float64
}

// MemoryReport computes the Fig 11/12 headline numbers.
func (r *Realm) MemoryReport() MemorySummary {
	d := store.SeriesSummary(r.Series, "mem_used")
	out := MemorySummary{
		MeanGB:     d.Mean,
		PeakGB:     d.Max,
		CapacityGB: r.MemPerNodeGB,
	}
	if r.MemPerNodeGB > 0 {
		out.MeanFraction = d.Mean / r.MemPerNodeGB
	}
	out.JobMaxMeanGB = r.Store.Aggregate(store.MetricMemUsedMax, r.JobFilter()).Mean
	return out
}

// ActiveNodesSummary describes Fig 8: the up/down profile.
type ActiveNodesSummary struct {
	MeanActive   float64
	MinActive    float64
	MaxActive    float64
	ZeroSamples  int // full-cluster outage intervals
	TotalSamples int
}

// ActiveNodesReport computes the Fig 8 headline numbers.
func (r *Realm) ActiveNodesReport() ActiveNodesSummary {
	col := store.SeriesColumn(r.Series, "active_nodes")
	d := stats.Summarize(col)
	out := ActiveNodesSummary{
		MeanActive:   d.Mean,
		MinActive:    d.Min,
		MaxActive:    d.Max,
		TotalSamples: len(col),
	}
	for _, v := range col {
		if v == 0 {
			out.ZeroSamples++
		}
	}
	return out
}

package core

import (
	"math"
	"testing"

	"supremm/internal/store"
)

func TestSeriesTrendOnSyntheticDrift(t *testing.T) {
	// A series with a planted upward drift must yield a significant
	// positive trend of the right magnitude.
	series := make([]store.SystemSample, 1000)
	for i := range series {
		day := float64(i) / 144 // 10-minute cadence
		series[i] = store.SystemSample{
			Time:       int64(i * 600),
			MemPerNode: 10 + 0.1*day + 0.05*math.Sin(float64(i)),
		}
	}
	r := NewRealm("x", 16, 32, 100, store.New(), series)
	tr, err := r.SeriesTrend("mem_used")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.SlopePerDay-0.1) > 0.01 {
		t.Errorf("slope = %v/day, want 0.1", tr.SlopePerDay)
	}
	if !tr.Significant || tr.P > 1e-6 {
		t.Errorf("planted drift not significant: p=%v", tr.P)
	}
	// Relative: 0.1/day over mean ~10.35 -> ~0.29/month.
	if tr.RelativePerMonth < 0.2 || tr.RelativePerMonth > 0.4 {
		t.Errorf("relative = %v/month", tr.RelativePerMonth)
	}
}

func TestSeriesTrendFlatSeriesInsignificant(t *testing.T) {
	series := make([]store.SystemSample, 500)
	for i := range series {
		series[i] = store.SystemSample{
			Time:        int64(i * 600),
			TotalTFlops: 5 + math.Sin(float64(i)*0.7),
		}
	}
	r := NewRealm("x", 16, 32, 100, store.New(), series)
	tr, err := r.SeriesTrend("total_tflops")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Significant && math.Abs(tr.RelativePerMonth) > 0.05 {
		t.Errorf("flat series flagged with material trend: %+v", tr)
	}
}

func TestSeriesTrendErrors(t *testing.T) {
	r := NewRealm("x", 16, 32, 100, store.New(), make([]store.SystemSample, 3))
	if _, err := r.SeriesTrend("mem_used"); err == nil {
		t.Error("short series should error")
	}
	if _, err := r.SeriesTrend("bogus"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestTrendReport(t *testing.T) {
	r, _ := realms(t)
	trends := r.TrendReport()
	if len(trends) != 5 {
		t.Fatalf("trends = %d", len(trends))
	}
	for _, tr := range trends {
		if tr.N != len(r.Series) {
			t.Errorf("%s: fitted %d points", tr.Metric, tr.N)
		}
		if math.IsNaN(tr.SlopePerDay) {
			t.Errorf("%s: NaN slope", tr.Metric)
		}
	}
}

func TestCharacterize(t *testing.T) {
	r, _ := realms(t)
	c := r.Characterize()
	if c.Jobs != r.JobCount() {
		t.Errorf("jobs = %d, realm has %d", c.Jobs, r.JobCount())
	}
	if math.Abs(c.TotalNodeHours-r.TotalNodeHours()) > 1e-6*c.TotalNodeHours {
		t.Errorf("node-hours = %v vs realm %v", c.TotalNodeHours, r.TotalNodeHours())
	}
	// Buckets partition the jobs and the node-hours.
	var jobs int
	var nh, share float64
	for _, b := range c.SizeBuckets {
		jobs += b.Jobs
		nh += b.NodeHours
		share += b.NodeHoursShare
	}
	if jobs != c.Jobs {
		t.Errorf("bucket jobs %d != %d", jobs, c.Jobs)
	}
	if math.Abs(nh-c.TotalNodeHours) > 1e-6*nh {
		t.Errorf("bucket node-hours %v != %v", nh, c.TotalNodeHours)
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("bucket shares sum to %v", share)
	}
	// The weighted mean runtime is the paper's statistic: longer than
	// the unweighted mean (big jobs run longer).
	if c.WeightedMeanRuntimeMin <= c.Runtime.Mean {
		t.Errorf("weighted runtime %v should exceed plain mean %v",
			c.WeightedMeanRuntimeMin, c.Runtime.Mean)
	}
	// Shares ordered and summing to 1.
	checkShares := func(name string, rows []ShareRow) {
		var total float64
		for i, row := range rows {
			total += row.Share
			if i > 0 && row.NodeHours > rows[i-1].NodeHours {
				t.Errorf("%s shares not ordered", name)
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s shares sum to %v", name, total)
		}
	}
	checkShares("science", c.ScienceShare)
	checkShares("app", c.AppShare)
	// The MD codes should be a visible slice of the mix.
	var mdShare float64
	for _, row := range c.AppShare {
		switch row.Key {
		case "namd", "amber", "gromacs":
			mdShare += row.Share
		}
	}
	if mdShare < 0.1 {
		t.Errorf("MD share = %v, want a visible fraction", mdShare)
	}
}

func TestCharacterizeEmptyRealm(t *testing.T) {
	r := NewRealm("x", 16, 32, 100, store.New(), nil)
	c := r.Characterize()
	if c.Jobs != 0 || c.TotalNodeHours != 0 {
		t.Errorf("empty characterization: %+v", c)
	}
	if !math.IsNaN(c.WeightedMeanRuntimeMin) {
		t.Error("empty weighted runtime should be NaN")
	}
}

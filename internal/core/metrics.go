package core

import (
	"math"
	"sort"

	"supremm/internal/stats"
	"supremm/internal/store"
)

// MetricPair is an ordered pair of metric names.
type MetricPair struct {
	A, B store.Metric
}

// CorrelationMatrix computes the Pearson correlation of every metric
// pair over the realm's jobs — the analysis behind §4.2's selection of
// the eight-metric independent set ("we found that there are many highly
// correlated or anti-correlated metrics, such as cpu user is negatively
// correlated to cpu idle, or net ib rx is positively correlated to
// net ib tx").
func (r *Realm) CorrelationMatrix(metrics []store.Metric) map[MetricPair]float64 {
	f := r.JobFilter()
	cols := make(map[store.Metric][]float64, len(metrics))
	for _, m := range metrics {
		vals, _ := r.Store.Values(m, f)
		cols[m] = vals
	}
	out := make(map[MetricPair]float64)
	for i, a := range metrics {
		for _, b := range metrics[i+1:] {
			out[MetricPair{a, b}] = stats.Pearson(cols[a], cols[b])
		}
	}
	return out
}

// CorrelationMatrixRank is CorrelationMatrix with Spearman rank
// correlation — robust to the heavy-tailed metric distributions, used
// to cross-check that the §4.2 redundancy conclusions are not artifacts
// of outliers.
func (r *Realm) CorrelationMatrixRank(metrics []store.Metric) map[MetricPair]float64 {
	f := r.JobFilter()
	cols := make(map[store.Metric][]float64, len(metrics))
	for _, m := range metrics {
		vals, _ := r.Store.Values(m, f)
		cols[m] = vals
	}
	out := make(map[MetricPair]float64)
	for i, a := range metrics {
		for _, b := range metrics[i+1:] {
			out[MetricPair{a, b}] = stats.Spearman(cols[a], cols[b])
		}
	}
	return out
}

// Correlation looks up a pair in either order.
func Correlation(m map[MetricPair]float64, a, b store.Metric) float64 {
	if v, ok := m[MetricPair{a, b}]; ok {
		return v
	}
	if v, ok := m[MetricPair{b, a}]; ok {
		return v
	}
	return math.NaN()
}

// SelectIndependent greedily picks a maximal set of metrics whose
// pairwise |correlation| stays below the threshold, reproducing §4.2's
// "smallest independent set of metrics that describe the execution
// behavior of the job mix". Candidates are considered in the given
// order, so callers can prioritize (e.g. the paper keeps cpu_idle over
// cpu_user).
func SelectIndependent(matrix map[MetricPair]float64, candidates []store.Metric, threshold float64) []store.Metric {
	var picked []store.Metric
	for _, c := range candidates {
		ok := true
		for _, p := range picked {
			rho := Correlation(matrix, c, p)
			if !math.IsNaN(rho) && math.Abs(rho) >= threshold {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, c)
		}
	}
	return picked
}

// CorrelatedPairs lists pairs with |rho| >= threshold, strongest first —
// the redundancy evidence quoted in §4.2.
func CorrelatedPairs(matrix map[MetricPair]float64, threshold float64) []MetricPair {
	var out []MetricPair
	for p, rho := range matrix {
		if !math.IsNaN(rho) && math.Abs(rho) >= threshold {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri := math.Abs(matrix[out[i]])
		rj := math.Abs(matrix[out[j]])
		if ri != rj {
			return ri > rj
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

package core

import (
	"math"
	"sync"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/sim"
	"supremm/internal/store"
)

var (
	fixtureOnce sync.Once
	rangerRealm *Realm
	ls4Realm    *Realm
)

// realms builds two shared simulated realms (30 days, 128 nodes each).
func realms(t *testing.T) (*Realm, *Realm) {
	t.Helper()
	fixtureOnce.Do(func() {
		build := func(cc cluster.Config) *Realm {
			cfg := sim.DefaultConfig(cc, 2013)
			cfg.DurationMin = 30 * 24 * 60
			res, err := sim.Run(cfg)
			if err != nil {
				panic(err)
			}
			return NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), res.Store, res.Series)
		}
		rangerRealm = build(cluster.RangerConfig().Scaled(128))
		ls4Realm = build(cluster.Lonestar4Config().Scaled(128))
	})
	if rangerRealm == nil || ls4Realm == nil {
		t.Fatal("fixture build failed")
	}
	return rangerRealm, ls4Realm
}

func TestRealmBasics(t *testing.T) {
	r, _ := realms(t)
	if r.JobCount() < 100 {
		t.Fatalf("realm has only %d jobs", r.JobCount())
	}
	if r.TotalNodeHours() <= 0 {
		t.Fatal("no node-hours")
	}
	for _, m := range store.KeyMetrics() {
		v := r.FleetMean(m)
		if math.IsNaN(v) || v < 0 {
			t.Errorf("fleet mean of %s = %v", m, v)
		}
	}
}

func TestCorrelationMatrixReproducesSection42(t *testing.T) {
	// §4.2: cpu_user negatively correlated with cpu_idle; net_ib_rx
	// positively correlated with net_ib_tx.
	r, _ := realms(t)
	m := r.CorrelationMatrix(store.AllMetrics())
	userIdle := Correlation(m, store.MetricCPUUser, store.MetricCPUIdle)
	if !(userIdle < -0.8) {
		t.Errorf("corr(cpu_user, cpu_idle) = %v, want strongly negative", userIdle)
	}
	rxTx := Correlation(m, store.MetricIBRx, store.MetricIBTx)
	if !(rxTx > 0.8) {
		t.Errorf("corr(ib_rx, ib_tx) = %v, want strongly positive", rxTx)
	}
	if v := Correlation(m, store.Metric("nope"), store.MetricCPUIdle); !math.IsNaN(v) {
		t.Errorf("unknown pair = %v, want NaN", v)
	}
}

func TestSelectIndependentDropsRedundantMetrics(t *testing.T) {
	r, _ := realms(t)
	m := r.CorrelationMatrix(store.AllMetrics())
	// Candidates ordered with the paper's preferred metrics first.
	candidates := append(store.KeyMetrics(),
		store.MetricCPUUser, store.MetricIBRx, store.MetricCPUSys, store.MetricRead, store.MetricLnetTx)
	// The redundant mirror metrics sit at |rho| ~ 1.0 (cpu_user vs
	// cpu_idle, ib_rx vs ib_tx); related-but-distinct pairs like
	// mem_used vs mem_used_max stay below ~0.97, so the paper's
	// eight-metric set emerges at a 0.98 threshold.
	picked := SelectIndependent(m, candidates, 0.98)
	// The eight preferred metrics must survive...
	pickedSet := map[store.Metric]bool{}
	for _, p := range picked {
		pickedSet[p] = true
	}
	for _, want := range store.KeyMetrics() {
		if !pickedSet[want] {
			t.Errorf("key metric %s was dropped", want)
		}
	}
	// ...and their mirror images must not.
	if pickedSet[store.MetricCPUUser] {
		t.Error("cpu_user should be excluded (anti-correlated with cpu_idle)")
	}
	if pickedSet[store.MetricIBRx] {
		t.Error("net_ib_rx should be excluded (correlated with net_ib_tx)")
	}
	pairs := CorrelatedPairs(m, 0.98)
	if len(pairs) == 0 {
		t.Error("expected strongly correlated pairs in the full metric set")
	}
}

func TestTopUserProfiles(t *testing.T) {
	// Fig 2: profiles of 5 heavy users, normalized to fleet mean 1;
	// "note the variability in the usage profiles between users".
	r, _ := realms(t)
	profiles := r.TopUserProfiles(5)
	if len(profiles) != 5 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for i, p := range profiles {
		if p.N == 0 || p.NodeHours <= 0 {
			t.Errorf("profile %d empty: %+v", i, p)
		}
		if len(p.Normalized) != 8 {
			t.Errorf("profile %s has %d metrics, want 8", p.Key, len(p.Normalized))
		}
		if i > 0 && p.NodeHours > profiles[i-1].NodeHours {
			t.Error("profiles not in node-hour order")
		}
	}
	// Variability: the five users should not have identical shapes.
	var dmax float64
	for i := range profiles {
		for j := i + 1; j < len(profiles); j++ {
			if d := ProfileDistance(profiles[i], profiles[j]); d > dmax {
				dmax = d
			}
		}
	}
	if dmax < 0.2 {
		t.Errorf("max pairwise profile distance = %v, want visible variability", dmax)
	}
}

func TestFleetProfileIsUnity(t *testing.T) {
	// A profile over ALL jobs must sit at 1.0 on every axis by
	// construction (the "perfect octagon").
	r, _ := realms(t)
	p := r.profileFor("fleet", r.JobFilter(), store.KeyMetrics())
	for m, v := range p.Normalized {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("fleet %s = %v, want 1.0", m, v)
		}
	}
	if p.MaxAxis() > 1.01 {
		t.Errorf("fleet max axis = %v", p.MaxAxis())
	}
}

func TestAppProfilesReproduceFig3(t *testing.T) {
	// AMBER idles more than NAMD and GROMACS on both clusters; NAMD's
	// profile is more similar across clusters than GROMACS's.
	ranger, ls4 := realms(t)
	for _, r := range []*Realm{ranger, ls4} {
		ps := r.AppProfiles([]string{"namd", "amber", "gromacs"})
		idle := func(i int) float64 { return ps[i].Normalized[store.MetricCPUIdle] }
		if !(idle(1) > idle(0) && idle(1) > idle(2)) {
			t.Errorf("%s: amber idle %v should exceed namd %v and gromacs %v",
				r.Cluster, idle(1), idle(0), idle(2))
		}
	}
	namdDist := ProfileDistance(ranger.AppProfile("namd"), ls4.AppProfile("namd"))
	gromacsDist := ProfileDistance(ranger.AppProfile("gromacs"), ls4.AppProfile("gromacs"))
	if namdDist >= gromacsDist {
		t.Errorf("NAMD cross-cluster distance %v should be below GROMACS %v", namdDist, gromacsDist)
	}
}

func TestEfficiencyReportReproducesFig4(t *testing.T) {
	ranger, ls4 := realms(t)
	// Fleet efficiency near the paper's 90%/85% marks, Ranger higher.
	re, le := ranger.FleetEfficiency(), ls4.FleetEfficiency()
	if re < 0.80 || re > 0.97 {
		t.Errorf("Ranger fleet efficiency = %v, want ~0.90", re)
	}
	if le < 0.72 || le > 0.93 {
		t.Errorf("LS4 fleet efficiency = %v, want ~0.85", le)
	}
	if le >= re {
		t.Errorf("LS4 efficiency (%v) should be below Ranger (%v)", le, re)
	}
	report := ranger.EfficiencyReport()
	if len(report) < 20 {
		t.Fatalf("only %d users in efficiency report", len(report))
	}
	var wasted, total float64
	for i, u := range report {
		if u.WastedNodeHours > u.NodeHours+1e-9 {
			t.Errorf("user %s wasted %v > total %v", u.User, u.WastedNodeHours, u.NodeHours)
		}
		if math.Abs(u.Efficiency()-(1-u.IdleFrac)) > 1e-12 {
			t.Errorf("efficiency identity broken for %s", u.User)
		}
		if i > 0 && u.NodeHours > report[i-1].NodeHours {
			t.Error("report not ordered by node-hours")
		}
		wasted += u.WastedNodeHours
		total += u.NodeHours
	}
	if math.Abs(ranger.WastedNodeHoursTotal()-wasted) > 1e-6*wasted {
		t.Error("WastedNodeHoursTotal inconsistent with report")
	}
	// Per-user wasted/total must be consistent with the fleet number.
	if math.Abs(wasted/total-(1-re)) > 0.02 {
		t.Errorf("sum of user waste %v inconsistent with fleet idle %v", wasted/total, 1-re)
	}
}

func TestWorstUsersAreIdleOutliers(t *testing.T) {
	// Figs 4-5: the circled users idle far above the fleet (8x/5x the
	// average user in Fig 5), with otherwise unremarkable resource use.
	r, _ := realms(t)
	worst := r.WorstUsers(1, 50)
	if len(worst) != 1 {
		t.Fatal("no worst user found")
	}
	w := worst[0]
	fleetIdle := r.FleetMean(store.MetricCPUIdle)
	if w.IdleFrac < 3*fleetIdle {
		t.Errorf("worst user idle %v not an outlier vs fleet %v", w.IdleFrac, fleetIdle)
	}
	if w.IdleFrac < 0.5 {
		t.Errorf("worst user idle = %v, want > 0.5 (paper: 87-89%%)", w.IdleFrac)
	}
	// Fig 5: other metrics normal-to-light — nothing else extreme.
	p := r.UserProfile(w.User)
	for m, v := range p.Normalized {
		if m == store.MetricCPUIdle {
			continue
		}
		if v > 4 {
			t.Errorf("worst user %s = %v x fleet; Fig 5 expects normal usage elsewhere", m, v)
		}
	}
}

func TestAnomalousUsers(t *testing.T) {
	r, _ := realms(t)
	anomalous := r.AnomalousUsers(store.MetricCPUIdle, 3, 50)
	if len(anomalous) == 0 {
		t.Fatal("expected idle-anomalous users (the population plants them)")
	}
	fleet := r.FleetMean(store.MetricCPUIdle)
	for _, p := range anomalous {
		if p.Raw[store.MetricCPUIdle] < 3*fleet*0.99 {
			t.Errorf("user %s idle %v below threshold", p.Key, p.Raw[store.MetricCPUIdle])
		}
	}
	if got := r.AnomalousUsers(store.MetricCPUIdle, 3, 1e12); got != nil {
		t.Error("impossible node-hour floor should return none")
	}
}

func TestRankCorrelationConfirmsRedundancy(t *testing.T) {
	// The §4.2 conclusions must survive a robust (Spearman) re-analysis:
	// the mirror pairs stay extreme under rank correlation too.
	r, _ := realms(t)
	m := r.CorrelationMatrixRank(store.AllMetrics())
	if rho := Correlation(m, store.MetricCPUUser, store.MetricCPUIdle); rho > -0.9 {
		t.Errorf("rank corr(user, idle) = %v, want near -1", rho)
	}
	if rho := Correlation(m, store.MetricIBRx, store.MetricIBTx); rho < 0.9 {
		t.Errorf("rank corr(ib rx, tx) = %v, want near 1", rho)
	}
	// And the selected independent set stays below threshold pairwise.
	for _, a := range store.KeyMetrics() {
		for _, b := range store.KeyMetrics() {
			if a == b {
				continue
			}
			if rho := Correlation(m, a, b); !math.IsNaN(rho) && math.Abs(rho) > 0.995 {
				t.Errorf("key metrics %s~%s rank-correlated at %v", a, b, rho)
			}
		}
	}
}

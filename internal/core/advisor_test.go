package core

import (
	"math"
	"testing"
)

func TestAdviseSystemGromacs(t *testing.T) {
	// GROMACS exploits the Westmere cluster (cluster modifier 0.7x idle,
	// 1.5x flops), so the advisor must prefer Lonestar4 for it.
	ranger, ls4 := realms(t)
	choice := AdviseSystem("gromacs", ranger, ls4)
	if choice.Best != "lonestar4" {
		t.Errorf("gromacs best = %q, want lonestar4 (rows %+v)", choice.Best, choice.Rows)
	}
	if len(choice.Rows) != 2 {
		t.Fatalf("rows = %d", len(choice.Rows))
	}
	// Rows sorted by relative idle ascending (best architecture fit
	// first).
	if choice.Rows[0].RelativeIdle > choice.Rows[1].RelativeIdle {
		t.Error("rows not sorted by relative idle")
	}
	for _, row := range choice.Rows {
		if row.Jobs < minAdviceJobs {
			t.Errorf("%s: only %d gromacs jobs in fixture", row.Cluster, row.Jobs)
		}
		if row.Efficiency <= 0 || row.Efficiency > 1 {
			t.Errorf("%s: efficiency %v", row.Cluster, row.Efficiency)
		}
	}
}

func TestAdviseSystemNoData(t *testing.T) {
	r, _ := realms(t)
	choice := AdviseSystem("nonexistent-code", r)
	if choice.Best != "" {
		t.Errorf("best = %q for unknown app", choice.Best)
	}
	if choice.Rows[0].Jobs != 0 {
		t.Errorf("rows: %+v", choice.Rows)
	}
}

func TestAdviseUser(t *testing.T) {
	ranger, ls4 := realms(t)
	// Pick a heavy user with enough jobs.
	heavy := ranger.TopUserProfiles(1)[0].Key
	advice, err := AdviseUser(heavy, ranger, ls4)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Recommended == "" {
		t.Fatal("no recommendation")
	}
	if len(advice.PerApp) == 0 {
		t.Fatal("no per-app advice")
	}
	// Expected efficiencies are plausible, and the recommended cluster
	// is among them.
	for name, e := range advice.ExpectedEfficiency {
		if e <= 0 || e > 1 {
			t.Errorf("%s expected efficiency %v", name, e)
		}
	}
	if _, ok := advice.ExpectedEfficiency[advice.Recommended]; !ok {
		t.Errorf("recommended %q has no expected efficiency", advice.Recommended)
	}
}

func TestAdviseUserUnknown(t *testing.T) {
	r, _ := realms(t)
	if _, err := AdviseUser("nobody-here", r); err == nil {
		t.Error("unknown user should error")
	}
}

func TestAdviceConsistentWithFig3(t *testing.T) {
	// The §5 conclusion — "provide incentives for users to run on
	// architectures best suited for their application" — must be
	// derivable: a pure-GROMACS user is steered to LS4 while a
	// pure-AMBER user's two options are closer together.
	ranger, ls4 := realms(t)
	g := AdviseSystem("gromacs", ranger, ls4)
	a := AdviseSystem("amber", ranger, ls4)
	gGap := g.Rows[1].RelativeIdle - g.Rows[0].RelativeIdle
	if g.Best != "lonestar4" || gGap <= 0 {
		t.Errorf("gromacs advice: %+v", g)
	}
	// GROMACS's per-core flops advantage on Westmere shows up too.
	byCluster := map[string]SystemEfficiency{}
	for _, row := range g.Rows {
		byCluster[row.Cluster] = row
	}
	if byCluster["lonestar4"].FlopsPerCoreGF <= byCluster["ranger"].FlopsPerCoreGF {
		t.Errorf("gromacs per-core flops: ls4 %v vs ranger %v",
			byCluster["lonestar4"].FlopsPerCoreGF, byCluster["ranger"].FlopsPerCoreGF)
	}
	_ = a // AMBER's ordering is allowed to go either way
	if math.IsNaN(gGap) {
		t.Error("NaN gap")
	}
}

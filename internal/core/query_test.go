package core

import (
	"math"
	"testing"

	"supremm/internal/store"
)

func TestParseQueryDefaults(t *testing.T) {
	q, err := ParseQuery("")
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy != store.ByUser || len(q.Metrics) != 8 || q.Limit != 20 {
		t.Errorf("defaults: %+v", q)
	}
	if q.Filter.MinSamples != 1 {
		t.Errorf("default minsamples = %d", q.Filter.MinSamples)
	}
}

func TestParseQueryFull(t *testing.T) {
	q, err := ParseQuery("group=app metrics=cpu_idle,cpu_flops app=namd user=alice science=Molecular+Biosciences cluster=ranger status=COMPLETED minsamples=3 limit=5 normalize=true")
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy != store.ByApp {
		t.Errorf("group = %v", q.GroupBy)
	}
	if len(q.Metrics) != 2 || q.Metrics[0] != store.MetricCPUIdle || q.Metrics[1] != store.MetricFlops {
		t.Errorf("metrics = %v", q.Metrics)
	}
	f := q.Filter
	if f.App != "namd" || f.User != "alice" || f.Cluster != "ranger" ||
		f.Status != "COMPLETED" || f.MinSamples != 3 {
		t.Errorf("filter = %+v", f)
	}
	if f.Science != "Molecular Biosciences" {
		t.Errorf("science = %q (plus-decoding broken)", f.Science)
	}
	if q.Limit != 5 || !q.Normalize {
		t.Errorf("limit/normalize = %d/%v", q.Limit, q.Normalize)
	}
}

func TestParseQueryGroups(t *testing.T) {
	for s, want := range map[string]store.GroupKey{
		"group=user": store.ByUser, "group=app": store.ByApp,
		"group=science": store.ByScience, "group=cluster": store.ByCluster,
		"group=status": store.ByStatus,
	} {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if q.GroupBy != want {
			t.Errorf("%s -> %v, want %v", s, q.GroupBy, want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"notkeyvalue",
		"group=bogus",
		"metrics=cpu_idle,nope",
		"minsamples=x",
		"minsamples=-1",
		"limit=0",
		"limit=x",
		"normalize=maybe",
		"frobnicate=1",
	}
	for _, s := range bad {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestRunQuery(t *testing.T) {
	r, _ := realms(t)
	q, err := ParseQuery("group=app metrics=cpu_idle limit=3")
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunQuery(q)
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want limit 3", len(res.Groups))
	}
	// Ordered by node-hours descending.
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i].NodeHours > res.Groups[i-1].NodeHours {
			t.Error("groups not ordered")
		}
	}
	if res.FleetMeans[store.MetricCPUIdle] <= 0 {
		t.Error("fleet mean missing")
	}
}

func TestRunQueryNormalized(t *testing.T) {
	// A normalized group-by-cluster query over everything must return
	// exactly 1.0 (it IS the fleet).
	r, _ := realms(t)
	q, err := ParseQuery("group=cluster metrics=cpu_idle,cpu_flops normalize=true")
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunQuery(q)
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	for _, m := range q.Metrics {
		if v := res.Groups[0].Mean[m]; math.Abs(v-1) > 1e-9 {
			t.Errorf("normalized fleet %s = %v, want 1", m, v)
		}
	}
}

func TestRunQueryScopedToRealmCluster(t *testing.T) {
	// A query without a cluster filter must not leak other clusters'
	// jobs: grouping by cluster should return only the realm's own.
	r, _ := realms(t)
	q, _ := ParseQuery("group=cluster")
	res := r.RunQuery(q)
	if len(res.Groups) != 1 || res.Groups[0].Key != r.Cluster {
		t.Errorf("realm scope broken: %+v", res.Groups)
	}
}

func TestRunQueryWithAppFilter(t *testing.T) {
	r, _ := realms(t)
	q, err := ParseQuery("group=user app=namd metrics=cpu_flops limit=100")
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunQuery(q)
	if len(res.Groups) == 0 {
		t.Fatal("no namd users found")
	}
	// Cross-check one group against a direct aggregate.
	g := res.Groups[0]
	agg := r.Store.Aggregate(store.MetricFlops, store.Filter{
		Cluster: r.Cluster, User: g.Key, App: "namd", MinSamples: 1,
	})
	if math.Abs(agg.Mean-g.Mean[store.MetricFlops]) > 1e-9 {
		t.Errorf("query %v vs direct %v", g.Mean[store.MetricFlops], agg.Mean)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"supremm/internal/stats"
	"supremm/internal/store"
)

// Trend is one metric's drift over the analysis period — the resource-
// manager report family of §4.3.5 ("job-level resource use trends",
// "resource use trends and predictions") that supports planning new
// systems.
type Trend struct {
	Metric string
	// SlopePerDay is the fitted drift in metric units per day.
	SlopePerDay float64
	// RelativePerMonth is the drift as a fraction of the series mean
	// per 30 days, the number a planner quotes.
	RelativePerMonth float64
	// P is the two-sided p-value of the slope; trends with P > 0.05 are
	// reported but flagged insignificant.
	P           float64
	Significant bool
	R2          float64
	N           int
}

// SeriesTrend fits a linear trend to a system-series column against
// time in days.
func (r *Realm) SeriesTrend(metric string) (Trend, error) {
	col := store.SeriesColumn(r.Series, metric)
	if col == nil {
		return Trend{}, fmt.Errorf("core: unknown series metric %q", metric)
	}
	if len(col) < 10 {
		return Trend{}, fmt.Errorf("core: series too short for a trend (%d samples)", len(col))
	}
	xs := make([]float64, len(col))
	for i, s := range r.Series {
		xs[i] = float64(s.Time) / 86400
	}
	fit, err := stats.FitLinear(xs, col)
	if err != nil {
		return Trend{}, err
	}
	t := Trend{
		Metric:      metric,
		SlopePerDay: fit.Slope,
		P:           fit.SlopeP,
		Significant: fit.SlopeP < 0.05,
		R2:          fit.R2,
		N:           fit.N,
	}
	if mean := stats.Mean(col); mean != 0 {
		t.RelativePerMonth = fit.Slope * 30 / mean
	}
	return t, nil
}

// TrendReport fits trends for the headline planning metrics.
func (r *Realm) TrendReport() []Trend {
	var out []Trend
	for _, m := range []string{"total_tflops", "mem_used", "io_scratch_write", "net_ib_tx", "cpu_idle"} {
		if t, err := r.SeriesTrend(m); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// Characterization is the §4.3.5 "workload characterization" report:
// the shape of the job mix a planner would size a new machine against.
type Characterization struct {
	Jobs           int
	TotalNodeHours float64

	// Job-size distribution (by job count and by node-hours).
	SizeBuckets []SizeBucket

	// Runtime distribution summary, minutes.
	Runtime stats.Describe
	// WeightedMeanRuntimeMin is the node-hour-weighted mean job length
	// (the paper's 549/446-minute statistic, §4.3.4).
	WeightedMeanRuntimeMin float64

	// ScienceShare is each parent science's node-hour share, descending.
	ScienceShare []ShareRow
	// AppShare is each application's node-hour share, descending.
	AppShare []ShareRow
}

// SizeBucket is one row of the size histogram.
type SizeBucket struct {
	Label          string
	MinNodes       int
	MaxNodes       int // inclusive; 0 means unbounded
	Jobs           int
	NodeHours      float64
	NodeHoursShare float64
}

// ShareRow is one group's share of consumption.
type ShareRow struct {
	Key       string
	NodeHours float64
	Share     float64
	Jobs      int
}

// Characterize computes the workload characterization over the realm's
// analyzed jobs.
func (r *Realm) Characterize() Characterization {
	recs := r.Store.Records(r.JobFilter())
	out := Characterization{Jobs: len(recs)}
	buckets := []SizeBucket{
		{Label: "1 node", MinNodes: 1, MaxNodes: 1},
		{Label: "2-15", MinNodes: 2, MaxNodes: 15},
		{Label: "16-63", MinNodes: 16, MaxNodes: 63},
		{Label: "64+", MinNodes: 64, MaxNodes: 0},
	}
	var runtimes []float64
	var wRuntime, wSum float64
	for _, rec := range recs {
		nh := rec.NodeHours()
		out.TotalNodeHours += nh
		rt := float64(rec.WallclockSec()) / 60
		runtimes = append(runtimes, rt)
		wRuntime += nh * rt
		wSum += nh
		for i := range buckets {
			b := &buckets[i]
			if rec.Nodes >= b.MinNodes && (b.MaxNodes == 0 || rec.Nodes <= b.MaxNodes) {
				b.Jobs++
				b.NodeHours += nh
				break
			}
		}
	}
	if out.TotalNodeHours > 0 {
		for i := range buckets {
			buckets[i].NodeHoursShare = buckets[i].NodeHours / out.TotalNodeHours
		}
	}
	out.SizeBuckets = buckets
	out.Runtime = stats.Summarize(runtimes)
	if wSum > 0 {
		out.WeightedMeanRuntimeMin = wRuntime / wSum
	} else {
		out.WeightedMeanRuntimeMin = math.NaN()
	}
	out.ScienceShare = shares(r.Store.GroupBy(store.ByScience, nil, r.JobFilter()), out.TotalNodeHours)
	out.AppShare = shares(r.Store.GroupBy(store.ByApp, nil, r.JobFilter()), out.TotalNodeHours)
	return out
}

func shares(groups []store.Group, total float64) []ShareRow {
	out := make([]ShareRow, 0, len(groups))
	for _, g := range groups {
		row := ShareRow{Key: g.Key, NodeHours: g.NodeHours, Jobs: g.N}
		if total > 0 {
			row.Share = g.NodeHours / total
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Package core is the analytics and reporting framework of the
// reproduction — the XDMoD/SUPReMM layer (§4). It consumes the job-level
// store and the system-level series and produces the paper's analyses:
// correlation-driven metric selection (§4.2), normalized usage profiles
// (Figs 2/3/5), the efficiency/wasted-node-hours report (Fig 4), the
// persistence model (Table 1, Fig 6), and the system-level reports
// (Figs 7-12), organized per stakeholder (§4.3).
package core

import (
	"supremm/internal/store"
)

// Realm bundles one cluster's ingested data, in XDMoD's sense of a data
// realm. All §4 analyses hang off it.
type Realm struct {
	Cluster string
	// CoresPerNode and MemPerNodeGB carry the hardware shape needed by
	// per-core and fraction-of-capacity reports.
	CoresPerNode int
	MemPerNodeGB float64
	PeakTFlops   float64

	// Store is the query surface — a monolithic *store.Store or a
	// time-partitioned *store.ShardSet; every analysis is backing-
	// agnostic because the two answer bit-identically (store.Reader).
	Store  store.Reader
	Series []store.SystemSample
}

// NewRealm assembles a realm.
func NewRealm(clusterName string, coresPerNode int, memGB, peakTF float64, st store.Reader, series []store.SystemSample) *Realm {
	return &Realm{
		Cluster:      clusterName,
		CoresPerNode: coresPerNode,
		MemPerNodeGB: memGB,
		PeakTFlops:   peakTF,
		Store:        st,
		Series:       series,
	}
}

// JobFilter returns the realm's base filter: this cluster's jobs longer
// than one sampling interval, which is the population §4.1 analyzes
// ("jobs included in this study are those longer than the default
// TACC_Stats sampling interval of 10 minutes").
func (r *Realm) JobFilter() store.Filter {
	return store.Filter{Cluster: r.Cluster, MinSamples: 1}
}

// FleetMean returns the node-hour-weighted fleet mean of a metric — the
// normalization denominator for every radar profile ("normalized by the
// average value of each metric over all of the usage").
func (r *Realm) FleetMean(m store.Metric) float64 {
	return r.Store.Aggregate(m, r.JobFilter()).Mean
}

// JobCount returns how many jobs pass the base filter.
func (r *Realm) JobCount() int {
	return len(r.Store.Select(r.JobFilter()))
}

// TotalNodeHours returns the consumed node-hours in the realm.
func (r *Realm) TotalNodeHours() float64 {
	return r.Store.TotalNodeHours(r.JobFilter())
}

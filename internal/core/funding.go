package core

import (
	"sort"
)

// ScienceUsagePoint is one (time bucket, science) cell of the funding-
// agency report (§4.3.6: "resource use trends by application area",
// "patterns of resource use by discipline").
type ScienceUsagePoint struct {
	BucketStart int64 // unix seconds
	Science     string
	NodeHours   float64
	Jobs        int
	// Share is the science's fraction of the bucket's node-hours.
	Share float64
}

// UsageByScienceOverTime buckets the realm's jobs by end time into
// windows of bucketDays and reports each parent science's consumption
// per bucket, ordered by bucket then descending node-hours. Jobs are
// attributed to the bucket containing their end time (the accounting
// convention).
func (r *Realm) UsageByScienceOverTime(bucketDays int) []ScienceUsagePoint {
	if bucketDays <= 0 {
		bucketDays = 7
	}
	bucketSec := int64(bucketDays) * 86400
	type cell struct {
		nh   float64
		jobs int
	}
	buckets := make(map[int64]map[string]*cell)
	totals := make(map[int64]float64)
	for _, rec := range r.Store.Records(r.JobFilter()) {
		b := rec.End / bucketSec * bucketSec
		m := buckets[b]
		if m == nil {
			m = make(map[string]*cell)
			buckets[b] = m
		}
		c := m[rec.Science]
		if c == nil {
			c = &cell{}
			m[rec.Science] = c
		}
		nh := rec.NodeHours()
		c.nh += nh
		c.jobs++
		totals[b] += nh
	}
	starts := make([]int64, 0, len(buckets))
	for b := range buckets {
		starts = append(starts, b)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var out []ScienceUsagePoint
	for _, b := range starts {
		var rows []ScienceUsagePoint
		for sci, c := range buckets[b] {
			p := ScienceUsagePoint{BucketStart: b, Science: sci, NodeHours: c.nh, Jobs: c.jobs}
			if totals[b] > 0 {
				p.Share = c.nh / totals[b]
			}
			rows = append(rows, p)
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].NodeHours != rows[j].NodeHours {
				return rows[i].NodeHours > rows[j].NodeHours
			}
			return rows[i].Science < rows[j].Science
		})
		out = append(out, rows...)
	}
	return out
}

// EffectiveUseReport is the §4.3.6 accountability headline: "fractions
// of resources which are effectively applied by system" — delivered
// core-hours in user state over total capacity-hours of the study
// window, alongside the scheduling (allocation) utilization.
type EffectiveUseReport struct {
	// AllocatedFraction is node-hours scheduled / node-hours of capacity
	// (up nodes integrated over the window).
	AllocatedFraction float64
	// EffectiveFraction further discounts allocated time by CPU idle:
	// the share of capacity that did user work.
	EffectiveFraction float64
	CapacityNodeHours float64
	UsedNodeHours     float64
}

// EffectiveUse computes the accountability report from the series and
// job records.
func (r *Realm) EffectiveUse() EffectiveUseReport {
	var rep EffectiveUseReport
	if len(r.Series) < 2 {
		return rep
	}
	// Capacity: integrate active nodes over sample intervals.
	for i := 1; i < len(r.Series); i++ {
		dtH := float64(r.Series[i].Time-r.Series[i-1].Time) / 3600
		rep.CapacityNodeHours += float64(r.Series[i].ActiveNodes) * dtH
	}
	rep.UsedNodeHours = r.TotalNodeHours()
	if rep.CapacityNodeHours > 0 {
		rep.AllocatedFraction = rep.UsedNodeHours / rep.CapacityNodeHours
		rep.EffectiveFraction = rep.AllocatedFraction * r.FleetEfficiency()
	}
	return rep
}

// SystemComparison lines up two realms' headline numbers — the cross-
// system view a funding agency reads ("range across all of the systems
// for which a funding agency is responsible", §4.3.6).
type SystemComparison struct {
	Rows []SystemRow
}

// SystemRow is one system's headline summary.
type SystemRow struct {
	Cluster           string
	Jobs              int
	NodeHours         float64
	Efficiency        float64
	MeanTFlops        float64
	PeakShare         float64 // delivered mean / machine peak
	MemFraction       float64
	AllocatedFraction float64
}

// CompareSystems builds the cross-system table.
func CompareSystems(realms ...*Realm) SystemComparison {
	var cmp SystemComparison
	for _, r := range realms {
		f := r.FlopsReport()
		m := r.MemoryReport()
		e := r.EffectiveUse()
		cmp.Rows = append(cmp.Rows, SystemRow{
			Cluster:           r.Cluster,
			Jobs:              r.JobCount(),
			NodeHours:         r.TotalNodeHours(),
			Efficiency:        r.FleetEfficiency(),
			MeanTFlops:        f.MeanTFlops,
			PeakShare:         f.MeanFraction,
			MemFraction:       m.MeanFraction,
			AllocatedFraction: e.AllocatedFraction,
		})
	}
	return cmp
}

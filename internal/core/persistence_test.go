package core

import (
	"math"
	"testing"

	"supremm/internal/store"
)

func TestPersistenceTableReproducesTable1(t *testing.T) {
	r, _ := realms(t)
	tab, err := r.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.OffsetsMin) != 5 || tab.OffsetsMin[0] != 10 || tab.OffsetsMin[4] != 1000 {
		t.Fatalf("offsets = %v", tab.OffsetsMin)
	}
	for _, metric := range PersistenceMetrics() {
		ratios := tab.Ratios[metric]
		if len(ratios) != 5 {
			t.Fatalf("%s: %d ratios", metric, len(ratios))
		}
		// Ratios grow with offset (predictability decays)...
		for i := 1; i < len(ratios); i++ {
			if math.IsNaN(ratios[i]) || math.IsNaN(ratios[i-1]) {
				t.Fatalf("%s: NaN ratio at offset %d", metric, tab.OffsetsMin[i])
			}
			if ratios[i] < ratios[i-1]-0.08 {
				t.Errorf("%s: ratio not increasing: %v", metric, ratios)
			}
		}
		// ...starting well below 1 ("the ability to predict the next
		// value 10 minutes later is very good")...
		if ratios[0] > 0.6 {
			t.Errorf("%s: 10-min ratio = %v, want strong short-term persistence", metric, ratios[0])
		}
		// ...and approaching 1 by 1000 minutes ("little memory of the
		// original value").
		if ratios[4] < 0.55 || ratios[4] > 1.25 {
			t.Errorf("%s: 1000-min ratio = %v, want near 1", metric, ratios[4])
		}
		// Log fits are good (paper: R^2 0.95-0.998 per metric).
		fit, ok := tab.Fits[metric]
		if !ok {
			t.Fatalf("%s: missing fit", metric)
		}
		if fit.R2 < 0.80 {
			t.Errorf("%s: log fit R2 = %v, want high", metric, fit.R2)
		}
		if fit.Slope <= 0 {
			t.Errorf("%s: slope = %v, want positive", metric, fit.Slope)
		}
	}
}

func TestPersistenceOrderingMatchesPaper(t *testing.T) {
	// §4.3.4: predictive ability increases io_scratch_write < net_ib_tx
	// ~ cpu_idle < mem_used ~ cpu_flops; i.e. the bursty write series is
	// the least persistent and flops/mem the most. We assert the robust
	// part: write is least predictable, flops and mem are the two most.
	r, _ := realms(t)
	tab, err := r.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	// At the 100-minute offset (index 2) the separation is widest. The
	// robust parts of the paper's ordering: the bursty write series is
	// clearly the least persistent, flops is among the two most
	// persistent, and mem beats cpu_idle. (net_ib_tx sits in a near-tie
	// band — the paper marks it "~ cpu_idle", we land it "~ mem_used";
	// both are second-order differences on the job-turnover floor.)
	order := tab.PredictabilityOrder(2)
	if order[0] != "io_scratch_write" {
		t.Errorf("least predictable = %s, want io_scratch_write (order %v)", order[0], order)
	}
	lastTwo := map[string]bool{order[3]: true, order[4]: true}
	if !lastTwo["cpu_flops"] {
		t.Errorf("cpu_flops not among the most predictable (order %v)", order)
	}
	r100 := func(m string) float64 { return tab.Ratios[m][2] }
	if r100("mem_used") >= r100("cpu_idle") {
		t.Errorf("mem_used ratio %v should be below cpu_idle %v", r100("mem_used"), r100("cpu_idle"))
	}
	if r100("io_scratch_write") <= r100("cpu_flops")+0.1 {
		t.Errorf("write ratio %v should clearly exceed flops %v", r100("io_scratch_write"), r100("cpu_flops"))
	}
}

func TestCombinedFitReproducesFig6(t *testing.T) {
	ranger, ls4 := realms(t)
	rt, err := ranger.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := ls4.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6 Ranger: slope 0.36(2), intercept -0.17(6), R^2 0.87.
	if rt.Combined.Slope < 0.1 || rt.Combined.Slope > 0.6 {
		t.Errorf("Ranger combined slope = %v, want ~0.36", rt.Combined.Slope)
	}
	if rt.Combined.R2 < 0.6 {
		t.Errorf("Ranger combined R2 = %v, want ~0.87", rt.Combined.R2)
	}
	if rt.Combined.SlopeP > 1e-4 {
		t.Errorf("Ranger slope p-value = %v, want highly significant", rt.Combined.SlopeP)
	}
	// §4.3.4 ties persistence to mean job length (549 min on Ranger,
	// 446 on Lonestar4): the shorter-job machine loses memory of the
	// current state sooner. The paper expresses this via a slightly
	// steeper LS4 slope; at our 48-node scale the slope difference is
	// within fit noise, so we assert the underlying quantity — the
	// prediction horizon — which must not be longer on LS4.
	rh := rt.PredictionHorizonMin(0.9)
	lh := lt.PredictionHorizonMin(0.9)
	if lh > rh*1.05 {
		t.Errorf("LS4 horizon %v min should not exceed Ranger %v", lh, rh)
	}
	// Both horizons are on the order of the mean job length (hundreds
	// of minutes, not tens or tens of thousands).
	for name, h := range map[string]float64{"ranger": rh, "lonestar4": lh} {
		if h < 60 || h > 20000 {
			t.Errorf("%s prediction horizon = %v min, want hundreds-to-thousands", name, h)
		}
	}
}

func TestPersistenceErrors(t *testing.T) {
	r, _ := realms(t)
	if _, err := r.Persistence(0); err == nil {
		t.Error("stepMin=0 should error")
	}
	if _, err := PersistenceFromSeries(nil, 10); err == nil {
		t.Error("empty series should error")
	}
	short := make([]store.SystemSample, 5)
	if _, err := PersistenceFromSeries(short, 10); err == nil {
		t.Error("short series should error")
	}
}

func TestPredictionHorizonDegenerate(t *testing.T) {
	tab := &PersistenceTable{}
	if !math.IsNaN(tab.PredictionHorizonMin(0.9)) {
		t.Error("zero-slope horizon should be NaN")
	}
}

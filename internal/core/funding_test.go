package core

import (
	"math"
	"testing"

	"supremm/internal/store"
)

func TestUsageByScienceOverTime(t *testing.T) {
	r, _ := realms(t)
	points := r.UsageByScienceOverTime(7)
	if len(points) == 0 {
		t.Fatal("no usage points")
	}
	// Buckets non-decreasing; shares per bucket sum to 1; rows within a
	// bucket ordered by node-hours.
	byBucket := map[int64]float64{}
	var prevBucket int64 = -1 << 62
	var prevNH float64
	for _, p := range points {
		if p.BucketStart < prevBucket {
			t.Fatal("buckets out of order")
		}
		if p.BucketStart > prevBucket {
			prevBucket = p.BucketStart
			prevNH = math.Inf(1)
		}
		if p.NodeHours > prevNH {
			t.Errorf("bucket %d rows not ordered", p.BucketStart)
		}
		prevNH = p.NodeHours
		byBucket[p.BucketStart] += p.Share
		if p.Jobs <= 0 || p.NodeHours < 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	for b, total := range byBucket {
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("bucket %d shares sum to %v", b, total)
		}
	}
	// A 30-day run in 7-day buckets: 4-6 buckets.
	if len(byBucket) < 4 || len(byBucket) > 6 {
		t.Errorf("buckets = %d for a 30-day run", len(byBucket))
	}
	// Molecular Biosciences (the MD-heavy mix) must appear.
	found := false
	for _, p := range points {
		if p.Science == "Molecular Biosciences" {
			found = true
			break
		}
	}
	if !found {
		t.Error("missing the dominant science area")
	}
	// Degenerate bucket size falls back to a week.
	if got := r.UsageByScienceOverTime(0); len(got) == 0 {
		t.Error("zero bucket days should default, not return empty")
	}
}

func TestEffectiveUse(t *testing.T) {
	r, _ := realms(t)
	e := r.EffectiveUse()
	if e.CapacityNodeHours <= 0 {
		t.Fatal("no capacity")
	}
	if e.AllocatedFraction <= 0 || e.AllocatedFraction > 1.02 {
		t.Errorf("allocated fraction = %v", e.AllocatedFraction)
	}
	if e.EffectiveFraction >= e.AllocatedFraction {
		t.Errorf("effective %v should be below allocated %v (idle discount)",
			e.EffectiveFraction, e.AllocatedFraction)
	}
	// The loaded regime: most capacity allocated.
	if e.AllocatedFraction < 0.5 {
		t.Errorf("allocated fraction = %v, want a loaded system", e.AllocatedFraction)
	}
	// Empty realm is all zeros, no panic.
	empty := NewRealm("x", 16, 32, 100, store.New(), nil)
	if got := empty.EffectiveUse(); got.CapacityNodeHours != 0 {
		t.Errorf("empty effective use: %+v", got)
	}
}

func TestCompareSystems(t *testing.T) {
	ranger, ls4 := realms(t)
	cmp := CompareSystems(ranger, ls4)
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	r, l := cmp.Rows[0], cmp.Rows[1]
	if r.Cluster != "ranger" || l.Cluster != "lonestar4" {
		t.Errorf("order: %s, %s", r.Cluster, l.Cluster)
	}
	// The cross-system claims: Ranger more efficient, LS4 fuller memory.
	if r.Efficiency <= l.Efficiency {
		t.Errorf("efficiency ordering: %v vs %v", r.Efficiency, l.Efficiency)
	}
	if r.MemFraction >= l.MemFraction {
		t.Errorf("memory ordering: %v vs %v", r.MemFraction, l.MemFraction)
	}
	for _, row := range cmp.Rows {
		if row.Jobs == 0 || row.NodeHours <= 0 || row.MeanTFlops <= 0 {
			t.Errorf("empty row: %+v", row)
		}
	}
}

package core

import (
	"fmt"
	"strconv"
	"strings"

	"supremm/internal/store"
)

// Query is a custom report specification — the reproduction of XDMoD's
// "option for stakeholders to define custom reports" (§4.3): a group-by
// dimension, a metric list, filters and a row limit, all expressible as
// a compact string.
type Query struct {
	GroupBy store.GroupKey
	Metrics []store.Metric
	Filter  store.Filter
	Limit   int
	// Normalize divides each metric by the fleet mean (radar-profile
	// semantics) instead of reporting raw weighted means.
	Normalize bool
}

// ParseQuery parses the compact query syntax:
//
//	group=user|app|science|cluster|status
//	metrics=cpu_idle,cpu_flops,...        (default: the 8 key metrics)
//	user=NAME app=NAME science=NAME cluster=NAME status=NAME
//	minsamples=N limit=N normalize=true
//
// Fields are whitespace-separated key=value pairs; unknown keys are
// rejected so typos fail loudly.
func ParseQuery(s string) (Query, error) {
	q := Query{
		GroupBy: store.ByUser,
		Metrics: store.KeyMetrics(),
		Filter:  store.Filter{MinSamples: 1},
		Limit:   20,
	}
	for _, field := range strings.Fields(s) {
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Query{}, fmt.Errorf("query: %q is not key=value", field)
		}
		switch key {
		case "group":
			g, err := parseGroupKey(value)
			if err != nil {
				return Query{}, err
			}
			q.GroupBy = g
		case "metrics":
			q.Metrics = q.Metrics[:0]
			for _, m := range strings.Split(value, ",") {
				metric := store.Metric(m)
				if !validMetric(metric) {
					return Query{}, fmt.Errorf("query: unknown metric %q", m)
				}
				q.Metrics = append(q.Metrics, metric)
			}
		case "user":
			q.Filter.User = value
		case "app":
			q.Filter.App = value
		case "science":
			// Science names contain spaces; queries use '+' for them.
			q.Filter.Science = strings.ReplaceAll(value, "+", " ")
		case "cluster":
			q.Filter.Cluster = value
		case "status":
			q.Filter.Status = value
		case "minsamples":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return Query{}, fmt.Errorf("query: bad minsamples %q", value)
			}
			q.Filter.MinSamples = n
		case "limit":
			n, err := strconv.Atoi(value)
			if err != nil || n < 1 {
				return Query{}, fmt.Errorf("query: bad limit %q", value)
			}
			q.Limit = n
		case "normalize":
			b, err := strconv.ParseBool(value)
			if err != nil {
				return Query{}, fmt.Errorf("query: bad normalize %q", value)
			}
			q.Normalize = b
		default:
			return Query{}, fmt.Errorf("query: unknown key %q", key)
		}
	}
	return q, nil
}

func parseGroupKey(s string) (store.GroupKey, error) {
	switch s {
	case "user":
		return store.ByUser, nil
	case "app":
		return store.ByApp, nil
	case "science":
		return store.ByScience, nil
	case "cluster":
		return store.ByCluster, nil
	case "status":
		return store.ByStatus, nil
	default:
		return 0, fmt.Errorf("query: unknown group %q", s)
	}
}

func validMetric(m store.Metric) bool {
	for _, known := range store.AllMetrics() {
		if m == known {
			return true
		}
	}
	return false
}

// QueryResult is one rendered custom report.
type QueryResult struct {
	Query  Query
	Groups []store.Group
	// FleetMeans holds the normalization denominators when Normalize is
	// set (also useful context otherwise).
	FleetMeans map[store.Metric]float64
}

// RunQuery executes a custom report against the realm. The realm's
// cluster filter is applied on top of the query's own filters so a
// realm never leaks another cluster's jobs.
func (r *Realm) RunQuery(q Query) QueryResult {
	f := q.Filter
	if f.Cluster == "" {
		f.Cluster = r.Cluster
	}
	groups := r.Store.GroupBy(q.GroupBy, q.Metrics, f)
	if q.Limit > 0 && len(groups) > q.Limit {
		groups = groups[:q.Limit]
	}
	res := QueryResult{Query: q, Groups: groups, FleetMeans: make(map[store.Metric]float64)}
	for _, m := range q.Metrics {
		res.FleetMeans[m] = r.FleetMean(m)
	}
	if q.Normalize {
		for _, g := range groups {
			for _, m := range q.Metrics {
				if fm := res.FleetMeans[m]; fm != 0 {
					g.Mean[m] /= fm
				}
			}
		}
	}
	return res
}

package core

import (
	"fmt"
	"math"

	"supremm/internal/stats"
	"supremm/internal/store"
)

// PersistenceMetrics are the five system-level series §4.3.4 analyzes,
// in the paper's Table 1 column order.
func PersistenceMetrics() []string {
	return []string{"cpu_flops", "mem_used", "io_scratch_write", "net_ib_tx", "cpu_idle"}
}

// PersistenceOffsetsMin are Table 1's row offsets, minutes.
func PersistenceOffsetsMin() []int { return []int{10, 30, 100, 500, 1000} }

// PersistenceTable is the reproduction of Table 1 plus the per-metric
// and combined logarithmic fits of Fig 6.
//
// Statistic definition: the paper describes "the standard deviation of
// the difference [between offset and original values] divided by the
// original standard deviation", yet its values converge to 1.0 at large
// offsets where the literal ratio converges to sqrt(2) for decorrelated
// series. We therefore use stddev(diff)/(sqrt(2)*sigma) = sqrt(1-rho),
// which matches both limits of Table 1 (see DESIGN.md §2).
type PersistenceTable struct {
	OffsetsMin []int
	StepMin    float64
	// Ratios[metric][i] is the persistence ratio at OffsetsMin[i];
	// NaN where the offset exceeds the series length.
	Ratios map[string][]float64
	// Fits are per-metric log-linear fits (ratio = a + b*ln(offset)).
	Fits map[string]stats.LinearFit
	// Combined is the all-metrics fit of Fig 6.
	Combined stats.LinearFit
}

// Persistence computes the Table 1 / Fig 6 analysis over the realm's
// system series. stepMin is the series' sampling cadence.
func (r *Realm) Persistence(stepMin float64) (*PersistenceTable, error) {
	return PersistenceFromSeries(r.Series, stepMin)
}

// PersistenceFromSeries is the series-level entry point (used directly
// by the ablation benchmarks).
func PersistenceFromSeries(series []store.SystemSample, stepMin float64) (*PersistenceTable, error) {
	if stepMin <= 0 {
		return nil, fmt.Errorf("core: stepMin must be positive")
	}
	if len(series) < 10 {
		return nil, fmt.Errorf("core: series too short for persistence analysis (%d samples)", len(series))
	}
	t := &PersistenceTable{
		OffsetsMin: PersistenceOffsetsMin(),
		StepMin:    stepMin,
		Ratios:     make(map[string][]float64),
		Fits:       make(map[string]stats.LinearFit),
	}
	var combX, combY []float64
	for _, metric := range PersistenceMetrics() {
		col := store.SeriesColumn(series, metric)
		if col == nil {
			return nil, fmt.Errorf("core: unknown series metric %q", metric)
		}
		ratios := make([]float64, len(t.OffsetsMin))
		var fitX, fitY []float64
		for i, off := range t.OffsetsMin {
			lag := int(math.Round(float64(off) / stepMin))
			if lag < 1 || lag >= len(col) {
				ratios[i] = math.NaN()
				continue
			}
			ratios[i] = stats.PersistenceRatio(col, lag)
			if !math.IsNaN(ratios[i]) {
				fitX = append(fitX, float64(off))
				fitY = append(fitY, ratios[i])
				combX = append(combX, float64(off))
				combY = append(combY, ratios[i])
			}
		}
		t.Ratios[metric] = ratios
		if len(fitX) >= 3 {
			if fit, err := stats.FitLogLinear(fitX, fitY); err == nil {
				t.Fits[metric] = fit
			}
		}
	}
	if len(combX) >= 3 {
		if fit, err := stats.FitLogLinear(combX, combY); err == nil {
			t.Combined = fit
		}
	}
	return t, nil
}

// PredictabilityOrder returns metric names ordered from hardest to
// easiest to predict (descending ratio at the given offset index),
// reproducing §4.3.4's ordering io_scratch_write < net_ib_tx ~ cpu_idle
// < mem_used ~ cpu_flops (listed there in increasing predictive
// ability).
func (t *PersistenceTable) PredictabilityOrder(offsetIdx int) []string {
	metrics := PersistenceMetrics()
	out := append([]string(nil), metrics...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a := t.Ratios[out[j-1]][offsetIdx]
			b := t.Ratios[out[j]][offsetIdx]
			if !math.IsNaN(a) && !math.IsNaN(b) && b > a {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// PredictionHorizonMin solves the combined fit for the offset at which
// the ratio reaches the given level (e.g. 0.9 ~ "little memory of the
// original value"), the quantity the paper compares to the mean job
// length (549 min on Ranger, 446 on Lonestar4).
func (t *PersistenceTable) PredictionHorizonMin(level float64) float64 {
	if t.Combined.Slope <= 0 {
		return math.NaN()
	}
	return math.Exp((level - t.Combined.Intercept) / t.Combined.Slope)
}

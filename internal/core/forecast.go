package core

import (
	"fmt"
	"math"

	"supremm/internal/stats"
	"supremm/internal/store"
)

// Forecaster implements the paper's "limited predictive capability"
// (abstract, §4.3.4): given the persistence structure of a system
// metric, predict its value some offset into the future with an
// uncertainty band derived from the persistence ratio.
//
// The model follows directly from the Table 1 statistic. With
// r(tau) = sqrt(1 - rho(tau)) the fitted persistence ratio, the minimum
// mean-square-error linear predictor of x(t+tau) given x(t) is
//
//	x̂(t+tau) = mu + rho(tau) * (x(t) - mu),   rho(tau) = 1 - r(tau)^2
//
// with prediction standard error sigma * sqrt(1 - rho^2). At small
// offsets rho ~ 1 and the forecast sticks to the current value; past
// the prediction horizon rho ~ 0 and it falls back to the ensemble
// mean — exactly the paper's reading of Table 1 ("we cannot predict the
// value any better than using the general statistics of the ensemble").
type Forecaster struct {
	Metric  string
	StepMin float64

	mean  float64
	sigma float64
	fit   stats.LinearFit // ratio = a + b*ln(offset_min)
}

// NewForecaster fits a forecaster for one system metric from the
// realm's series and persistence table.
func (r *Realm) NewForecaster(metric string, stepMin float64) (*Forecaster, error) {
	col := store.SeriesColumn(r.Series, metric)
	if col == nil {
		return nil, fmt.Errorf("core: unknown series metric %q", metric)
	}
	if len(col) < 20 {
		return nil, fmt.Errorf("core: series too short to fit a forecaster (%d samples)", len(col))
	}
	tab, err := r.Persistence(stepMin)
	if err != nil {
		return nil, err
	}
	fit, ok := tab.Fits[metric]
	if !ok {
		return nil, fmt.Errorf("core: metric %q is not a persistence metric", metric)
	}
	return &Forecaster{
		Metric:  metric,
		StepMin: stepMin,
		mean:    stats.Mean(col),
		sigma:   stats.PopStdDev(col),
		fit:     fit,
	}, nil
}

// Rho returns the implied autocorrelation at an offset in minutes,
// clamped to [0, 1].
func (f *Forecaster) Rho(offsetMin float64) float64 {
	if offsetMin <= 0 {
		return 1
	}
	ratio := f.fit.Predict(math.Log(offsetMin))
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return 1 - ratio*ratio
}

// Forecast predicts the metric offsetMin into the future from the
// current value, returning the point prediction and its standard error.
func (f *Forecaster) Forecast(current, offsetMin float64) (pred, se float64) {
	rho := f.Rho(offsetMin)
	pred = f.mean + rho*(current-f.mean)
	se = f.sigma * math.Sqrt(1-rho*rho)
	return pred, se
}

// EvalResult summarizes out-of-sample forecast quality against the
// naive climatology (always predict the ensemble mean).
type EvalResult struct {
	OffsetMin float64
	N         int
	MAE       float64 // mean absolute error of the persistence forecast
	NaiveMAE  float64 // MAE of always predicting the mean
	// Skill is 1 - MAE/NaiveMAE: positive means the persistence model
	// beats climatology.
	Skill float64
}

// Evaluate walks the series and scores the forecaster at one offset.
func (f *Forecaster) Evaluate(series []store.SystemSample, offsetMin float64) (EvalResult, error) {
	col := store.SeriesColumn(series, f.Metric)
	if col == nil {
		return EvalResult{}, fmt.Errorf("core: unknown series metric %q", f.Metric)
	}
	lag := int(math.Round(offsetMin / f.StepMin))
	if lag < 1 || lag >= len(col) {
		return EvalResult{}, fmt.Errorf("core: offset %v min out of range for %d samples", offsetMin, len(col))
	}
	var sumErr, sumNaive float64
	n := 0
	for i := 0; i+lag < len(col); i++ {
		pred, _ := f.Forecast(col[i], offsetMin)
		actual := col[i+lag]
		sumErr += math.Abs(pred - actual)
		sumNaive += math.Abs(f.mean - actual)
		n++
	}
	res := EvalResult{OffsetMin: offsetMin, N: n}
	if n > 0 {
		res.MAE = sumErr / float64(n)
		res.NaiveMAE = sumNaive / float64(n)
		if res.NaiveMAE > 0 {
			res.Skill = 1 - res.MAE/res.NaiveMAE
		}
	}
	return res, nil
}

// ScheduleHint is the paper's §4.3.4 closing suggestion made concrete:
// given forecasts of the system's IO and network load, say whether now
// is a good moment to launch IO-heavy or network-heavy work ("add high
// I/O jobs when I/O is relatively free").
type ScheduleHint struct {
	Metric       string
	Current      float64
	ForecastMean float64 // forecast at the given lead time
	FleetMean    float64
	// Headroom is (fleet mean - forecast)/fleet mean; positive means
	// the resource is forecast to be below its typical load.
	Headroom  float64
	Favorable bool
}

// Hint produces a scheduling hint for one metric at a lead time.
func (r *Realm) Hint(metric string, leadMin float64) (ScheduleHint, error) {
	f, err := r.NewForecaster(metric, 10)
	if err != nil {
		return ScheduleHint{}, err
	}
	col := store.SeriesColumn(r.Series, metric)
	current := col[len(col)-1]
	pred, _ := f.Forecast(current, leadMin)
	h := ScheduleHint{
		Metric:       metric,
		Current:      current,
		ForecastMean: pred,
		FleetMean:    f.mean,
	}
	if f.mean != 0 {
		h.Headroom = (f.mean - pred) / f.mean
	}
	h.Favorable = h.Headroom > 0
	return h, nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"supremm/internal/store"
)

// writeData materializes a minimal data directory for the daemon.
func writeData(t *testing.T, dir string, jobs int) {
	t.Helper()
	st := store.New()
	for i := 0; i < jobs; i++ {
		r := store.JobRecord{
			JobID:   int64(1 + i),
			Cluster: "ranger",
			User:    fmt.Sprintf("u%d", i%3),
			App:     "namd",
			Nodes:   2,
			Submit:  int64(100 * i),
			Start:   int64(100*i + 10),
			End:     int64(100*i + 3610),
			Status:  "completed",
			Samples: 2,
		}
		r.CPUIdleFrac = 0.2
		st.Add(r)
	}
	jf, err := os.Create(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(jf); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(filepath.Join(dir, "series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	samples := []store.SystemSample{{Time: 600, ActiveNodes: 4, BusyNodes: 2}}
	if err := store.SaveSeries(sf, samples); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, makes a
// real HTTP request, then cancels the context and expects a clean
// drained exit.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	writeData(t, dir, 5)

	ctx, cancel := context.WithCancel(context.Background())
	readyc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{data: dir, addr: "127.0.0.1:0", drain: 5 * time.Second,
			retries: 1, ready: func(addr string) { readyc <- addr }})
	}()

	var addr string
	select {
	case addr = <-readyc:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get("http://" + addr + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: status %d: %s", resp.StatusCode, body)
	}
	var h struct {
		Status string `json:"status"`
		Jobs   int    `json:"jobs"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 5 {
		t.Fatalf("health = %+v", h)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}

// TestRunBadDataDir exercises the startup failure path.
func TestRunBadDataDir(t *testing.T) {
	err := run(context.Background(), options{data: filepath.Join(t.TempDir(), "absent"),
		addr: "127.0.0.1:0", drain: time.Second})
	if err == nil {
		t.Fatal("run succeeded on a missing data directory")
	}
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"supremm/internal/leakcheck"
	"supremm/internal/serve"
)

// TestShutdownShedsQueueAndDrainsInFlight is the SIGTERM contract
// test: with a slow query executing and another queued behind a
// 1-slot admission valve, cancelling the run context (what the signal
// handler does) must (1) shed the queued request immediately with
// 503 + Retry-After, (2) let the in-flight request finish with 200,
// (3) return from run without error inside the drain budget, and
// (4) leave the listener closed to new connections.
func TestShutdownShedsQueueAndDrainsInFlight(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeData(t, dir, 5)

	// block parks the first data request inside its admission slot until
	// the test releases it, so the second request is forced to queue.
	block := make(chan struct{})
	entered := make(chan string, 4)
	hooks := serve.Hooks{BeforeHandle: func(_ context.Context, path string) func() {
		entered <- path
		<-block
		return nil
	}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	readyc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{data: dir, addr: "127.0.0.1:0", drain: 5 * time.Second,
			retries: 1, maxInFlight: 1, maxQueue: 1, hooks: hooks,
			ready: func(addr string) { readyc <- addr }})
	}()
	var addr string
	select {
	case addr = <-readyc:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	type result struct {
		status     int
		retryAfter string
		body       string
		err        error
	}
	fetch := func(target string) result {
		resp, err := http.Get("http://" + addr + target)
		if err != nil {
			return result{err: err}
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // body already read; nothing useful on error
		return result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: string(body)}
	}

	slowc := make(chan result, 1)
	go func() { slowc <- fetch("/api/v1/aggregate?metric=cpu_idle") }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("slow request never entered its handler")
	}

	queuedc := make(chan result, 1)
	go func() { queuedc <- fetch("/api/v1/workload") }()
	// Wait until /metrics shows the second request parked in the queue;
	// metrics bypasses admission so it answers while the slot is held.
	waitQueued := func() bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			r := fetch("/metrics")
			if r.err == nil && r.status == http.StatusOK {
				var m struct {
					Admission struct {
						InQueue int `json:"in_queue"`
					} `json:"admission"`
				}
				if json.Unmarshal([]byte(r.body), &m) == nil && m.Admission.InQueue >= 1 {
					return true
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	if !waitQueued() {
		t.Fatal("second request never queued")
	}

	// SIGTERM arrives: the queue must shed at once, before the slow
	// request is released.
	cancel()
	select {
	case r := <-queuedc:
		if r.err != nil {
			t.Fatalf("queued request failed: %v", r.err)
		}
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("queued request: status %d, want 503 (body %s)", r.status, r.body)
		}
		if r.retryAfter == "" {
			t.Error("queued request shed without Retry-After")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request not shed after shutdown began")
	}

	// The in-flight request completes normally inside the drain budget.
	close(block)
	select {
	case r := <-slowc:
		if r.err != nil {
			t.Fatalf("in-flight request failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request: status %d (body %s)", r.status, r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return within the drain budget")
	}

	// The listener is gone: new connections must be refused.
	if r := fetch("/api/v1/health"); r.err == nil {
		t.Fatalf("listener still answering after drain: status %d", r.status)
	} else if !strings.Contains(r.err.Error(), "refused") && !strings.Contains(r.err.Error(), "connect") {
		t.Logf("post-drain connection failed as expected: %v", r.err)
	}
	// Drain the hook channel so nothing blocks test cleanup.
	for {
		select {
		case <-entered:
		default:
			return
		}
	}
}

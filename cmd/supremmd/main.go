// Command supremmd is the query-serving daemon: the XDMoD-style
// analytics service over an ingested data directory, exposing the
// store/core/report query surface as an HTTP JSON API (see DESIGN.md
// §10 and the README endpoint table).
//
//	supremmd -data ./out/pipeline -addr :8090
//
// The daemon polls the data directory (-poll) and hot-reloads when a
// new ingest batch lands; POST /api/v1/reload forces it. SIGINT/SIGTERM
// drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supremm/internal/serve"
)

func main() {
	var (
		data    = flag.String("data", "data", "ingested data directory (jobs.supremm/jobs.jsonl, series.jsonl, quality.json)")
		addr    = flag.String("addr", "127.0.0.1:8090", "listen address")
		poll    = flag.Duration("poll", 10*time.Second, "data-directory poll interval for hot reload (0 disables)")
		cache   = flag.Int("cache", 0, "query-cache entries (0 = default 1024, negative disables)")
		workers = flag.Int("workers", 0, "aggregation workers (0 = GOMAXPROCS)")
		retries = flag.Int("retries", 2, "retries per snapshot load racing an ingest rewrite")
		drain   = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *data, *addr, *poll, *drain, *cache, *workers, *retries, nil); err != nil {
		fmt.Fprintln(os.Stderr, "supremmd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled and the
// listener has drained. ready, when non-nil, receives the bound
// address once the listener is up (tests use it).
func run(ctx context.Context, data, addr string, poll, drain time.Duration,
	cache, workers, retries int, ready func(addr string)) error {

	srv, err := serve.New(serve.Config{
		DataDir:   data,
		Workers:   workers,
		CacheSize: cache,
		RetryMax:  retries,
		Backoff: func(attempt int) {
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		},
		Now: time.Now,
	})
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "supremmd: serving %s (%d jobs, cluster %s, generation %d, %s source) on %s\n",
		data, snap.Realm.Store.Len(), snap.Realm.Cluster, snap.Gen, snap.Source, addr)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if ready != nil {
		ready(ln.Addr().String())
	}

	pollDone := make(chan struct{})
	if poll > 0 {
		go func() {
			defer close(pollDone)
			t := time.NewTicker(poll)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					reloaded, err := srv.MaybeReload()
					if err != nil {
						fmt.Fprintln(os.Stderr, "supremmd: reload:", err)
					} else if reloaded {
						s := srv.Snapshot()
						fmt.Fprintf(os.Stderr, "supremmd: reloaded %s (%d jobs, generation %d)\n",
							data, s.Realm.Store.Len(), s.Gen)
					}
				}
			}
		}()
	} else {
		close(pollDone)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "supremmd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	<-pollDone
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// Command supremmd is the query-serving daemon: the XDMoD-style
// analytics service over an ingested data directory, exposing the
// store/core/report query surface as an HTTP JSON API (see DESIGN.md
// §10 and the README endpoint table).
//
//	supremmd -data ./out/pipeline -addr :8090
//
// The daemon polls the data directory (-poll) and hot-reloads when a
// new ingest batch lands; POST /api/v1/reload forces it. It defends
// itself under overload (DESIGN.md §13): -max-inflight bounds
// concurrent queries with a bounded wait queue behind it, excess load
// is shed with 503 + Retry-After, -timeout cancels slow aggregations,
// and a circuit breaker keeps the last-good snapshot served while the
// data directory is torn. SIGINT/SIGTERM shed the queue and drain
// in-flight requests before exit.
//
// With -self-heal (the default, DESIGN.md §15) the daemon also scrubs
// its shards in the background on a -scrub-budget byte budget per poll
// tick, quarantines any shard whose bytes no longer match the manifest,
// repairs it from the monolithic backing when possible, and otherwise
// serves the healthy days degraded — with coverage reported on
// /healthz, /readyz, /metrics and an X-Supremm-Coverage header on every
// response. -degraded-min-coverage sets a floor below which data
// queries are refused outright.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supremm/internal/serve"
)

// options collects everything run needs; flags populate it in main,
// tests populate it directly.
type options struct {
	data    string
	addr    string
	poll    time.Duration
	drain   time.Duration
	cache   int
	workers int
	retries int

	maxInFlight      int           // 0 = serve default (64), negative disables
	maxQueue         int           // 0 = 2x maxInFlight, negative = no queue
	timeout          time.Duration // per-request deadline, 0 disables
	retryAfter       int           // Retry-After seconds on shed responses
	breakerThreshold int           // reload failures that open the breaker
	breakerBackoff   int           // breaker cooldown in poll ticks

	selfHeal    bool    // scrub/quarantine/repair + degraded serving
	scrubBudget int64   // scrubber bytes per poll tick, negative = full sweep
	minCoverage float64 // coverage floor for data queries, 0 = serve at any

	// ready receives the bound address once the listener is up.
	ready func(addr string)
	// hooks are passed through to serve.Config (tests).
	hooks serve.Hooks
}

func main() {
	var opts options
	flag.StringVar(&opts.data, "data", "data", "ingested data directory (jobs.supremm/jobs.jsonl, series.jsonl, quality.json)")
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8090", "listen address")
	flag.DurationVar(&opts.poll, "poll", 10*time.Second, "data-directory poll interval for hot reload (0 disables)")
	flag.IntVar(&opts.cache, "cache", 0, "query-cache entries (0 = default 1024, negative disables)")
	flag.IntVar(&opts.workers, "workers", 0, "aggregation workers (0 = GOMAXPROCS)")
	flag.IntVar(&opts.retries, "retries", 2, "retries per snapshot load racing an ingest rewrite")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "shutdown drain budget for in-flight requests")
	flag.IntVar(&opts.maxInFlight, "max-inflight", 0, "max concurrently executing data queries (0 = default 64, negative disables admission control)")
	flag.IntVar(&opts.maxQueue, "max-queue", 0, "max queries waiting for a slot before shedding (0 = 2x max-inflight, negative = no queue)")
	flag.DurationVar(&opts.timeout, "timeout", 10*time.Second, "per-request deadline for data queries (0 disables)")
	flag.IntVar(&opts.retryAfter, "retry-after", 1, "Retry-After seconds on shed/timed-out responses")
	flag.IntVar(&opts.breakerThreshold, "breaker-threshold", 3, "consecutive reload failures that open the snapshot-reload breaker")
	flag.IntVar(&opts.breakerBackoff, "breaker-backoff", 2, "breaker cooldown in poll ticks (doubles per failed probe)")
	flag.BoolVar(&opts.selfHeal, "self-heal", true, "scrub shards in the background, quarantine+repair damage, serve degraded with coverage accounting")
	flag.Int64Var(&opts.scrubBudget, "scrub-budget", 0, "shard bytes the scrubber re-verifies per poll tick (0 = default 4 MiB, negative = full sweep every tick)")
	flag.Float64Var(&opts.minCoverage, "degraded-min-coverage", 0, "refuse data queries (503 + missing day ranges) when degraded coverage is below this fraction (0 = serve at any coverage)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "supremmd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled and the
// listener has drained.
func run(ctx context.Context, opts options) error {
	srv, err := serve.New(serve.Config{
		DataDir:   opts.data,
		Workers:   opts.workers,
		CacheSize: opts.cache,
		RetryMax:  opts.retries,
		Backoff: func(attempt int) {
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		},
		Now:                 time.Now,
		MaxInFlight:         opts.maxInFlight,
		MaxQueue:            opts.maxQueue,
		RequestTimeout:      opts.timeout,
		RetryAfterSec:       opts.retryAfter,
		BreakerThreshold:    opts.breakerThreshold,
		BreakerBackoffPolls: opts.breakerBackoff,
		SelfHeal:            opts.selfHeal,
		ScrubBudgetBytes:    opts.scrubBudget,
		MinCoverage:         opts.minCoverage,
		Hooks:               opts.hooks,
	})
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "supremmd: serving %s (%d jobs, cluster %s, generation %d, %s source, %d shards) on %s\n",
		opts.data, snap.Realm.Store.Len(), snap.Realm.Cluster, snap.Gen, snap.Source, snap.Shards, opts.addr)
	if cov := snap.Coverage; cov.Degraded {
		fmt.Fprintf(os.Stderr, "supremmd: DEGRADED generation %d: serving %d of %d rows (coverage %.4f), %d shard(s) quarantined — see %s/QUARANTINE.supremm\n",
			snap.Gen, cov.RowsServed, cov.RowsTotal, cov.Ratio, cov.MissingShards, opts.data)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if opts.ready != nil {
		opts.ready(ln.Addr().String())
	}

	pollDone := make(chan struct{})
	if opts.poll > 0 {
		go func() {
			defer close(pollDone)
			t := time.NewTicker(opts.poll)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					reloaded, err := srv.MaybeReload()
					if err != nil {
						fmt.Fprintln(os.Stderr, "supremmd: reload:", err)
					} else if reloaded {
						s := srv.Snapshot()
						fmt.Fprintf(os.Stderr, "supremmd: reloaded %s (%d jobs, generation %d, %d/%d shards reused)\n",
							opts.data, s.Realm.Store.Len(), s.Gen, s.ShardsReused, s.Shards)
						if cov := s.Coverage; cov.Degraded {
							fmt.Fprintf(os.Stderr, "supremmd: DEGRADED generation %d: serving %d of %d rows (coverage %.4f), %d shard(s) quarantined — see %s/%s\n",
								s.Gen, cov.RowsServed, cov.RowsTotal, cov.Ratio, cov.MissingShards, opts.data, "QUARANTINE.supremm")
						}
					}
				}
			}
		}()
	} else {
		close(pollDone)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Shed first, then drain: queued requests get an immediate 503 +
	// Retry-After so the drain budget is spent only on queries already
	// executing, and new arrivals during the drain are shed too.
	srv.BeginDrain()
	fmt.Fprintln(os.Stderr, "supremmd: draining (new requests shed)...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	<-pollDone
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

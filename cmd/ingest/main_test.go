package main

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func TestIngestCommandEndToEnd(t *testing.T) {
	work := t.TempDir()
	rawDir := filepath.Join(work, "raw")
	cc := cluster.RangerConfig().Scaled(6)
	cfg := sim.DefaultConfig(cc, 41)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.UtilizationTarget = 2
	cfg.RawDir = rawDir
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acctPath := filepath.Join(work, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, res.Acct); err != nil {
		t.Fatal(err)
	}
	af.Close()

	out := filepath.Join(work, "out")
	if err := run(rawDir, acctPath, out); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(filepath.Join(out, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != res.Store.Len() {
		t.Errorf("ingested %d jobs, sim had %d", st.Len(), res.Store.Len())
	}
	sf, err := os.Open(filepath.Join(out, "series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	series, err := store.LoadSeries(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Error("empty series")
	}
}

func TestIngestCommandErrors(t *testing.T) {
	if err := run("/nonexistent", "/nonexistent", t.TempDir()); err == nil {
		t.Error("missing inputs should error")
	}
	// Valid raw dir but bad accounting file.
	bad := filepath.Join(t.TempDir(), "acct")
	if err := os.WriteFile(bad, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.TempDir(), bad, t.TempDir()); err == nil {
		t.Error("corrupt accounting should error")
	}
}

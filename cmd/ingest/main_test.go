package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func TestIngestCommandEndToEnd(t *testing.T) {
	work := t.TempDir()
	rawDir := filepath.Join(work, "raw")
	cc := cluster.RangerConfig().Scaled(6)
	cfg := sim.DefaultConfig(cc, 41)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.UtilizationTarget = 2
	cfg.RawDir = rawDir
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acctPath := filepath.Join(work, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, res.Acct); err != nil {
		t.Fatal(err)
	}
	af.Close()

	out := filepath.Join(work, "out")
	if err := run(rawDir, acctPath, out); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(filepath.Join(out, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != res.Store.Len() {
		t.Errorf("ingested %d jobs, sim had %d", st.Len(), res.Store.Len())
	}
	// The binary snapshot must carry exactly the same records as the
	// JSON-lines file it rides alongside.
	bfr, err := os.Open(filepath.Join(out, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	defer bfr.Close()
	bst, err := store.LoadBinary(bfr)
	if err != nil {
		t.Fatal(err)
	}
	if bst.Len() != st.Len() {
		t.Errorf("binary snapshot has %d jobs, jsonl has %d", bst.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if bst.Record(i) != st.Record(i) {
			t.Fatalf("row %d: binary %+v != jsonl %+v", i, bst.Record(i), st.Record(i))
		}
	}
	sf, err := os.Open(filepath.Join(out, "series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	series, err := store.LoadSeries(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Error("empty series")
	}
	q, err := ingest.LoadQuality(filepath.Join(out, "quality.json"))
	if err != nil {
		t.Fatal(err)
	}
	if q.FilesScanned == 0 {
		t.Error("quality report scanned no files")
	}
	if q.FilesQuarantined != 0 {
		t.Errorf("clean sim archive quarantined %d files", q.FilesQuarantined)
	}
	// The time-partitioned form rides alongside the monolithic files:
	// a CRC-checked manifest naming one shard per job-end day, whose
	// union is record-for-record the monolithic store.
	ss, err := store.LoadShardSet(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumShards() < 2 {
		t.Errorf("two-day sim produced %d shards, want >= 2", ss.NumShards())
	}
	if stats := ss.LoadStats(); stats.Loaded != ss.NumShards() || stats.Reused != 0 {
		t.Errorf("cold shard load stats %+v, want %d loaded / 0 reused", stats, ss.NumShards())
	}
	if ss.Len() != st.Len() {
		t.Errorf("shard set has %d jobs, jsonl has %d", ss.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if ss.Record(i) != st.Record(i) {
			t.Fatalf("row %d: shard %+v != jsonl %+v", i, ss.Record(i), st.Record(i))
		}
	}
	// All outputs went through the atomic temp+rename path; none of
	// its work files may survive the run.
	assertNoTempFiles(t, out)
}

func TestIngestCommandPolicies(t *testing.T) {
	work := t.TempDir()
	rawDir := filepath.Join(work, "raw")
	hostDir := filepath.Join(rawDir, "h1")
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	corrupt := "$tacc_stats 2.0\n!cpu user,E idle,E\n1000\ncpu 0 1 9\n1600\ncpu 0 garbage 18\n"
	if err := os.WriteFile(filepath.Join(hostDir, "1.raw"), []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	acctPath := filepath.Join(work, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, nil); err != nil {
		t.Fatal(err)
	}
	af.Close()

	// Lenient (the default) quarantines and succeeds.
	out := filepath.Join(work, "out")
	if err := run(rawDir, acctPath, out); err != nil {
		t.Fatalf("lenient run errored on corrupt file: %v", err)
	}
	q, err := ingest.LoadQuality(filepath.Join(out, "quality.json"))
	if err != nil {
		t.Fatal(err)
	}
	if q.FilesQuarantined != 1 {
		t.Errorf("quality = %+v, want 1 quarantined file", q)
	}

	// Strict aborts with host/file context.
	err = runWorkers(rawDir, acctPath, filepath.Join(work, "out-strict"), 1,
		ingest.Options{Policy: ingest.Strict})
	if err == nil || !strings.Contains(err.Error(), "h1/1.raw") {
		t.Fatalf("strict run error = %v, want fault at h1/1.raw", err)
	}
}

// TestIngestCleansHealingLeftovers: a fresh ingest batch supersedes
// whatever self-healing state (and writer debris) the previous
// generation accumulated in the output directory — stale day shards,
// quarantined shard evidence, the quarantine log, and orphaned temp
// files from a killed writer must all be gone after the run.
func TestIngestCleansHealingLeftovers(t *testing.T) {
	work := t.TempDir()
	rawDir := filepath.Join(work, "raw")
	hostDir := filepath.Join(rawDir, "h1")
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	raw := "$tacc_stats 2.0\n!cpu user,E idle,E\n1000\ncpu 0 1 9\n1600\ncpu 0 5 18\n"
	if err := os.WriteFile(filepath.Join(hostDir, "1.raw"), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	acctPath := filepath.Join(work, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, nil); err != nil {
		t.Fatal(err)
	}
	af.Close()

	out := filepath.Join(work, "out")
	if err := os.MkdirAll(out, 0o755); err != nil {
		t.Fatal(err)
	}
	leftovers := []string{
		store.ShardFileName(12345),                          // stale day from a dead generation
		store.QuarantinedShardFile(12345),                   // quarantined evidence
		store.QuarantineFile,                                // its custody log
		".jobs.jsonl.tmp1234567", ".shard-3.supremm.tmp88", // killed-writer debris
	}
	for _, name := range leftovers {
		if err := os.WriteFile(filepath.Join(out, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if err := run(rawDir, acctPath, out); err != nil {
		t.Fatal(err)
	}
	for _, name := range leftovers {
		if _, err := os.Stat(filepath.Join(out, name)); !os.IsNotExist(err) {
			t.Errorf("leftover %s survived the batch (stat err %v)", name, err)
		}
	}
	assertNoTempFiles(t, out)
}

func TestIngestCommandErrors(t *testing.T) {
	if err := run("/nonexistent", "/nonexistent", t.TempDir()); err == nil {
		t.Error("missing inputs should error")
	}
	// Valid raw dir but bad accounting file.
	bad := filepath.Join(t.TempDir(), "acct")
	if err := os.WriteFile(bad, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(t.TempDir(), bad, t.TempDir()); err == nil {
		t.Error("corrupt accounting should error")
	}
}

package main

import (
	"os"

	"supremm/internal/store"
)

// writeFileAtomic writes dir/name via temp + fsync + rename + parent
// directory fsync, delegated to store.AtomicWriteFile so every writer
// in the system — ingest outputs, shard files, the manifest, the
// quarantine log — lands files with identical crash-durability
// semantics. Readers (most importantly supremmd's poll-reload) never
// observe a half-written output, and a crash immediately after the
// rename cannot roll the directory entry back to the old file.
func writeFileAtomic(dir, name string, write func(f *os.File) error) error {
	return store.AtomicWriteFile(dir, name, write)
}

package main

import (
	"os"
	"path/filepath"
)

// writeFileAtomic writes dir/name via a temp file in the same
// directory: write, fsync, close, rename. Readers — most importantly
// supremmd's poll-reload — therefore never observe a half-written
// output; they see either the previous complete file or the new one.
// The torn-snapshot fault in internal/faultinject simulates the legacy
// writers that rewrote in place, which this path retires.
//
// On any failure the target file is left untouched and the temp file
// is removed.
func writeFileAtomic(dir, name string, write func(f *os.File) error) error {
	f, err := os.CreateTemp(dir, "."+name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		_ = f.Close() // write error wins
		_ = os.Remove(tmp)
		return err
	}
	// Sync before rename: a crash after the rename must not leave the
	// new name pointing at data the kernel never flushed.
	if err := f.Sync(); err != nil {
		_ = f.Close() // sync error wins
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomic covers the happy path and the two failure
// contracts: a failed write leaves the previous target untouched, and
// no temp file survives any outcome.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()

	if err := writeFileAtomic(dir, "out.txt", func(f *os.File) error {
		_, err := f.WriteString("v1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1\n" {
		t.Fatalf("content %q, want %q", got, "v1\n")
	}

	// A failing writer must not touch the existing file...
	boom := errors.New("boom")
	err = writeFileAtomic(dir, "out.txt", func(f *os.File) error {
		if _, werr := f.WriteString("half-written garbage"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	got, err = os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1\n" {
		t.Fatalf("failed write changed the target: %q", got)
	}

	// ...and no temp residue may remain after success or failure.
	assertNoTempFiles(t, dir)

	// Replacement goes through in full.
	if err := writeFileAtomic(dir, "out.txt", func(f *os.File) error {
		_, err := f.WriteString("v2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2\n" {
		t.Fatalf("content %q, want %q", got, "v2\n")
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles fails if any ".<name>.tmp*" work file is left in
// dir — leaked temps would accumulate on the ingest host and confuse
// directory fingerprinting.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}

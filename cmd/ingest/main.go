// Command ingest is the ETL stage run standalone: it parses a directory
// of raw TACC_Stats files, joins them with an accounting log by job ID,
// and writes the job-record store, system series, and data-quality
// report — the paper's "ingest into the data warehouse" step (Fig 1).
//
//	ingest -raw ./data/raw -acct ./data/accounting.log -out ./data
//
// By default the ingest runs lenient: unreadable or corrupt files are
// quarantined and accounted for in quality.json rather than aborting
// the run (18 months of production data always contains some damage).
// -strict restores abort-at-first-fault, for validating archives that
// are supposed to be clean.
//
// Profiling the hot path (see "Ingest performance" in README.md):
//
//	ingest -raw ./data/raw -acct ./data/accounting.log -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"supremm/internal/ingest"
	"supremm/internal/sched"
	"supremm/internal/store"
)

func main() {
	var (
		rawDir      = flag.String("raw", "", "directory of raw TACC_Stats files (host/day.raw)")
		acctFl      = flag.String("acct", "", "accounting log file")
		out         = flag.String("out", "data", "output directory")
		workers     = flag.Int("workers", 0, "parallel host workers (0 = GOMAXPROCS)")
		strict      = flag.Bool("strict", false, "abort at the first faulty file instead of quarantining it")
		maxInterval = flag.Int64("max-interval", ingest.DefaultMaxIntervalSec,
			"suppress intervals longer than this many seconds (missing days, clock steps); negative disables")
		retries    = flag.Int("retries", 2, "retries per file for transient read failures")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *rawDir == "" || *acctFl == "" {
		fmt.Fprintln(os.Stderr, "usage: ingest -raw DIR -acct FILE [-out DIR] [-workers N] [-strict] [-max-interval SEC] [-retries N] [-cpuprofile FILE] [-memprofile FILE]")
		os.Exit(2)
	}
	var profFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
		profFile = f
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
	}
	policy := ingest.Lenient
	if *strict {
		policy = ingest.Strict
	}
	err := runWorkers(*rawDir, *acctFl, *out, *workers, ingest.Options{
		Policy:         policy,
		MaxIntervalSec: *maxInterval,
		RetryMax:       *retries,
		Backoff: func(attempt int) {
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		},
	})
	if profFile != nil {
		pprof.StopCPUProfile()
		if cerr := profFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if *memprofile != "" {
		if perr := writeHeapProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	return pprof.WriteHeapProfile(f)
}

// run keeps the sequential entry point for tests; the CLI goes through
// runWorkers.
func run(rawDir, acctPath, out string) error {
	return runWorkers(rawDir, acctPath, out, 1, ingest.Options{Policy: ingest.Lenient})
}

func runWorkers(rawDir, acctPath, out string, workers int, opts ingest.Options) error {
	af, err := os.Open(acctPath)
	if err != nil {
		return err
	}
	acct, err := sched.ReadAcct(af)
	_ = af.Close() // read-only file; nothing to lose on close
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers
	fmt.Fprintf(os.Stderr, "ingesting %s with %d accounting records (%s policy)...\n",
		rawDir, len(acct), opts.Policy)
	res, err := ingest.IngestRawOpts(rawDir, acct, opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	// Group rows by job-end day before writing anything: the monolithic
	// files (jobs.jsonl, jobs.supremm) then hold exactly the
	// concatenation of the day shards, so whichever backing supremmd
	// loads — shards, binary or jsonl — every response is byte-identical.
	res.Store.ReorderByEndDay()
	// Every output lands atomically (temp + fsync + rename in the same
	// directory): supremmd polls this directory and must never catch a
	// half-written batch. A reader sees either the previous files or the
	// new ones, per file.
	if err := writeFileAtomic(out, "jobs.jsonl", func(f *os.File) error {
		return res.Store.Save(f)
	}); err != nil {
		return err
	}
	// The columnar binary snapshot rides alongside jobs.jsonl: supremmd
	// prefers it (faster load, CRC-checked), and the JSON stays the
	// inspectable/interoperable form.
	if err := writeFileAtomic(out, "jobs.supremm", func(f *os.File) error {
		return res.Store.SaveBinary(f)
	}); err != nil {
		return err
	}
	if err := writeFileAtomic(out, "series.jsonl", func(f *os.File) error {
		return store.SaveSeries(f, res.Series)
	}); err != nil {
		return err
	}
	if err := writeFileAtomic(out, "quality.json", func(f *os.File) error {
		return ingest.WriteQuality(f, &res.Quality)
	}); err != nil {
		return err
	}
	// The time-partitioned form: one immutable shard per job-end day
	// plus the CRC-checked manifest, written shards-first so the
	// manifest never names a shard that has not landed. supremmd
	// prefers this backing and reloads a day's append incrementally.
	if err := store.WriteShardDir(out, res.Store); err != nil {
		return err
	}
	q := &res.Quality
	fmt.Fprintf(os.Stderr, "wrote %d job records, %d series samples (%d unattributed intervals)\n",
		res.Store.Len(), len(res.Series), res.Unattributed)
	fmt.Fprintf(os.Stderr, "data quality: %.1f%% of %d files ingested (%d quarantined), %d records dropped, %d resets, %d intervals clamped, %d retries, %d jobs without data\n",
		q.Completeness()*100, q.FilesScanned, q.FilesQuarantined,
		q.RecordsDropped, q.ResetsDetected, q.IntervalsClamped,
		q.RetriesPerformed, q.JobsNoData)
	return nil
}

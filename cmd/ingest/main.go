// Command ingest is the ETL stage run standalone: it parses a directory
// of raw TACC_Stats files, joins them with an accounting log by job ID,
// and writes the job-record store and system series — the paper's
// "ingest into the data warehouse" step (Fig 1).
//
//	ingest -raw ./data/raw -acct ./data/accounting.log -out ./data
//
// Profiling the hot path (see "Ingest performance" in README.md):
//
//	ingest -raw ./data/raw -acct ./data/accounting.log -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"supremm/internal/ingest"
	"supremm/internal/sched"
	"supremm/internal/store"
)

func main() {
	var (
		rawDir     = flag.String("raw", "", "directory of raw TACC_Stats files (host/day.raw)")
		acctFl     = flag.String("acct", "", "accounting log file")
		out        = flag.String("out", "data", "output directory")
		workers    = flag.Int("workers", 0, "parallel host workers (0 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *rawDir == "" || *acctFl == "" {
		fmt.Fprintln(os.Stderr, "usage: ingest -raw DIR -acct FILE [-out DIR] [-workers N] [-cpuprofile FILE] [-memprofile FILE]")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
	}
	err := runWorkers(*rawDir, *acctFl, *out, *workers)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if perr := writeHeapProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	return pprof.WriteHeapProfile(f)
}

// run keeps the sequential entry point for tests; the CLI goes through
// runWorkers.
func run(rawDir, acctPath, out string) error {
	return runWorkers(rawDir, acctPath, out, 1)
}

func runWorkers(rawDir, acctPath, out string, workers int) error {
	af, err := os.Open(acctPath)
	if err != nil {
		return err
	}
	acct, err := sched.ReadAcct(af)
	_ = af.Close() // read-only file; nothing to lose on close
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ingesting %s with %d accounting records...\n", rawDir, len(acct))
	res, err := ingest.IngestRawParallel(rawDir, acct, workers)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(out, "jobs.jsonl"))
	if err != nil {
		return err
	}
	if err := res.Store.Save(jf); err != nil {
		_ = jf.Close() // save error wins
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(out, "series.jsonl"))
	if err != nil {
		return err
	}
	if err := store.SaveSeries(sf, res.Series); err != nil {
		_ = sf.Close() // save error wins
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d job records, %d series samples (%d unattributed intervals)\n",
		res.Store.Len(), len(res.Series), res.Unattributed)
	return nil
}

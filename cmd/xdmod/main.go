// Command xdmod is the query/report CLI over an ingested store — the
// analyst-facing face of the reproduction. It loads jobs.jsonl and
// series.jsonl produced by cmd/simulate or cmd/ingest and renders the
// stakeholder reports of §4.3.
//
//	xdmod -data ./data -report users          # Fig 2-style profiles
//	xdmod -data ./data -report apps           # Fig 3
//	xdmod -data ./data -report efficiency     # Fig 4/5
//	xdmod -data ./data -report persistence    # Table 1 / Fig 6
//	xdmod -data ./data -report system         # Figs 7-12 headlines
//	xdmod -data ./data -report failures       # completion failure profiles
//	xdmod -data ./data -report quality        # ingest data-completeness report
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"supremm/internal/anomaly"
	"supremm/internal/core"
	"supremm/internal/ingest"
	"supremm/internal/report"
	"supremm/internal/sched"
	"supremm/internal/serve"
	"supremm/internal/store"
)

func main() {
	var (
		data     = flag.String("data", "data", "data directory (jobs.jsonl, series.jsonl)")
		reportFl = flag.String("report", "system", "report: users|apps|efficiency|persistence|system|failures|trends|workload|forecast|waits|quality")
		queryFl  = flag.String("query", "", "custom report, e.g. 'group=app metrics=cpu_idle,cpu_flops limit=10'")
		suiteFl  = flag.String("suite", "", "render a full stakeholder suite: user|developer|support|admin|manager|funding")
		topN     = flag.Int("n", 5, "how many users/apps to show")
	)
	flag.Parse()
	if *queryFl != "" {
		if err := runQuery(*data, *queryFl); err != nil {
			fmt.Fprintln(os.Stderr, "xdmod:", err)
			os.Exit(1)
		}
		return
	}
	if *suiteFl != "" {
		if err := runSuite(*data, *suiteFl); err != nil {
			fmt.Fprintln(os.Stderr, "xdmod:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*data, *reportFl, *topN); err != nil {
		fmt.Fprintln(os.Stderr, "xdmod:", err)
		os.Exit(1)
	}
}

// loadRealm delegates to the serve loader so the CLI and the daemon
// assemble realms identically (cluster-shape inference included).
func loadRealm(dir string) (*core.Realm, error) {
	return serve.LoadRealm(dir)
}

// runSuite renders one stakeholder's full report set (§4.3), with the
// data-completeness section appended for support/admin when the data
// directory carries an ingest quality report.
func runSuite(dir, who string) error {
	r, err := loadRealm(dir)
	if err != nil {
		return err
	}
	q, err := loadQuality(dir)
	if err != nil {
		return err
	}
	return report.SuiteWithQuality(os.Stdout, report.Stakeholder(who), q, r)
}

// loadQuality reads the data directory's ingest quality report; a
// missing file is not an error (cmd/simulate writes none), it just
// means no completeness section.
func loadQuality(dir string) (*ingest.DataQuality, error) {
	return serve.LoadQuality(dir)
}

// runQuery executes a custom report (the §4.3 "custom reports" path).
func runQuery(dir, spec string) error {
	r, err := loadRealm(dir)
	if err != nil {
		return err
	}
	q, err := core.ParseQuery(spec)
	if err != nil {
		return err
	}
	res := r.RunQuery(q)
	headers := []string{"group", "jobs", "node-hours"}
	for _, m := range q.Metrics {
		headers = append(headers, string(m))
	}
	t := report.NewTable(fmt.Sprintf("custom report: %s", spec), headers...)
	for _, g := range res.Groups {
		row := []string{g.Key, fmt.Sprintf("%d", g.N), fmt.Sprintf("%.0f", g.NodeHours)}
		for _, m := range q.Metrics {
			row = append(row, fmt.Sprintf("%.4g", g.Mean[m]))
		}
		t.AddRow(row...)
	}
	return t.Render(os.Stdout)
}

func run(dir, what string, n int) error {
	r, err := loadRealm(dir)
	if err != nil {
		return err
	}
	out := os.Stdout
	switch what {
	case "users":
		return report.Fig2(out, r, n)
	case "apps":
		return report.Fig3(out, []*core.Realm{r}, []string{"namd", "amber", "gromacs"})
	case "efficiency":
		if err := report.Fig4(out, r); err != nil {
			return err
		}
		return report.Fig5(out, r)
	case "persistence":
		tab, err := r.Persistence(10)
		if err != nil {
			return err
		}
		if err := report.Table1(out, tab); err != nil {
			return err
		}
		return report.Fig6(out, r.Cluster, tab)
	case "system":
		for _, f := range []func() error{
			func() error { return report.Fig7(out, r) },
			func() error { return report.Fig8(out, r) },
			func() error { return report.Fig9(out, r) },
			func() error { return report.Fig10(out, r) },
			func() error { return report.Fig11(out, r) },
			func() error { return report.Fig12(out, r) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	case "trends":
		return report.Trends(out, r.Cluster, r.TrendReport())
	case "workload":
		return report.Characterization(out, r.Cluster, r.Characterize())
	case "forecast":
		return report.ForecastReport(out, r)
	case "waits":
		af, err := os.Open(filepath.Join(dir, "accounting.log"))
		if err != nil {
			return fmt.Errorf("waits report needs accounting.log in the data dir: %w", err)
		}
		defer af.Close()
		acct, err := sched.ReadAcct(af)
		if err != nil {
			return err
		}
		return report.WaitReport(out, r.Cluster, sched.ComputeWaitStats(acct))
	case "quality":
		q, err := ingest.LoadQuality(filepath.Join(dir, "quality.json"))
		if err != nil {
			return fmt.Errorf("quality report needs quality.json from cmd/ingest: %w", err)
		}
		return report.DataCompleteness(out, q)
	case "failures":
		t := report.NewTable("job completion failure profiles by application",
			"app", "jobs", "completed", "failed", "timeout", "node_fail", "failure%")
		for _, p := range anomaly.FailureProfiles(r.Store, store.ByApp, r.JobFilter()) {
			t.AddRow(p.Key, fmt.Sprintf("%d", p.Jobs), fmt.Sprintf("%d", p.Completed),
				fmt.Sprintf("%d", p.Failed), fmt.Sprintf("%d", p.Timeout),
				fmt.Sprintf("%d", p.NodeFail), fmt.Sprintf("%.1f", p.FailurePct))
		}
		return t.Render(out)
	default:
		return fmt.Errorf("unknown report %q", what)
	}
}

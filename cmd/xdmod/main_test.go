package main

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/sim"
	"supremm/internal/store"
)

// writeData materializes a small simulated dataset in dir.
func writeData(t *testing.T, dir string) {
	t.Helper()
	cc := cluster.RangerConfig().Scaled(12)
	cfg := sim.DefaultConfig(cc, 31)
	cfg.DurationMin = 5 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(dir + "/jobs.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if err := res.Store.Save(jf); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(dir + "/series.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if err := store.SaveSeries(sf, res.Series); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRealmInfersShape(t *testing.T) {
	dir := t.TempDir()
	writeData(t, dir)
	r, err := loadRealm(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cluster != "ranger" {
		t.Errorf("cluster = %q", r.Cluster)
	}
	if r.CoresPerNode != 16 || r.MemPerNodeGB != 32 {
		t.Errorf("shape = %d cores / %v GB", r.CoresPerNode, r.MemPerNodeGB)
	}
	// Node count inferred from the series peak, so the peak-TF scale is
	// the scaled machine's, not full Ranger's.
	full := cluster.RangerConfig().PeakTFlops()
	if r.PeakTFlops >= full/2 {
		t.Errorf("peak = %v TF, want scaled-down", r.PeakTFlops)
	}
}

func TestAllReports(t *testing.T) {
	dir := t.TempDir()
	writeData(t, dir)
	for _, rep := range []string{"users", "apps", "efficiency", "persistence", "system", "failures", "trends", "workload", "forecast"} {
		if err := run(dir, rep, 3); err != nil {
			t.Errorf("report %s: %v", rep, err)
		}
	}
	if err := run(dir, "bogus", 3); err == nil {
		t.Error("unknown report should error")
	}
	// The quality report needs quality.json from cmd/ingest.
	if err := run(dir, "quality", 3); err == nil {
		t.Error("quality without quality.json should error")
	}
	writeQuality(t, dir)
	if err := run(dir, "quality", 3); err != nil {
		t.Errorf("report quality: %v", err)
	}
	// The waits report needs the accounting log, which writeData does
	// not produce.
	if err := run(dir, "waits", 3); err == nil {
		t.Error("waits without accounting.log should error")
	}
	if err := run(t.TempDir(), "users", 3); err == nil {
		t.Error("missing data dir should error")
	}
}

// writeQuality drops a small degraded quality report next to the data.
func writeQuality(t *testing.T, dir string) {
	t.Helper()
	q := &ingest.DataQuality{
		FilesScanned: 20, FilesQuarantined: 1,
		Quarantined: []ingest.QuarantinedFile{{Host: "h1", File: "1.raw", Reason: "parse: garbled"}},
	}
	if err := ingest.SaveQuality(filepath.Join(dir, "quality.json"), q); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteCommand(t *testing.T) {
	dir := t.TempDir()
	writeData(t, dir)
	for _, who := range []string{"user", "developer", "support", "admin", "manager", "funding"} {
		if err := runSuite(dir, who); err != nil {
			t.Errorf("suite %s: %v", who, err)
		}
	}
	// With a quality report present the suites pick it up.
	writeQuality(t, dir)
	if err := runSuite(dir, "support"); err != nil {
		t.Errorf("suite with quality report: %v", err)
	}
	// A corrupt quality report is an error, not silently ignored.
	if err := os.WriteFile(filepath.Join(dir, "quality.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSuite(dir, "support"); err == nil {
		t.Error("corrupt quality.json should error")
	}
	if err := runSuite(dir, "alien"); err == nil {
		t.Error("unknown stakeholder should error")
	}
	if err := runSuite(t.TempDir(), "user"); err == nil {
		t.Error("missing data should error")
	}
}

func TestRunQueryCommand(t *testing.T) {
	dir := t.TempDir()
	writeData(t, dir)
	if err := runQuery(dir, "group=app metrics=cpu_idle limit=3"); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(dir, "group=bogus"); err == nil {
		t.Error("bad query should error")
	}
	if err := runQuery(t.TempDir(), "group=app"); err == nil {
		t.Error("missing data should error")
	}
}

// Command supremm runs the whole pipeline in one shot: it simulates the
// preset clusters, ingests the results, and regenerates every table and
// figure of the paper. It is the quickest way to see the reproduction
// end to end:
//
//	supremm -days 30 -nodes 128            # all figures, both clusters
//	supremm -fig 4 -cluster ranger         # a single figure
//	supremm -table 1                       # Table 1
//	supremm -corr                          # the sec 4.2 correlation report
//	supremm -anomalies                     # ANCOR-style diagnoses
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"supremm/internal/anomaly"
	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/report"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func main() {
	var (
		days      = flag.Int("days", 30, "simulated days")
		nodes     = flag.Int("nodes", 128, "nodes per cluster (scaled presets)")
		seed      = flag.Int64("seed", 2013, "simulation seed")
		fig       = flag.Int("fig", 0, "render only this figure (2-12)")
		table     = flag.Int("table", 0, "render only this table (1)")
		corr      = flag.Bool("corr", false, "render the metric correlation report")
		anomalies = flag.Bool("anomalies", false, "render ANCOR-style anomaly diagnoses")
		advise    = flag.String("advise", "", "advise which cluster suits this application (e.g. gromacs)")
		svgDir    = flag.String("svg", "", "also write vector figures into this directory")
		htmlOut   = flag.String("html", "", "also write a self-contained HTML dashboard to this file")
		clusterFl = flag.String("cluster", "", "restrict to one cluster (ranger|lonestar4)")
	)
	flag.Parse()
	if err := run(*days, *nodes, *seed, *fig, *table, *corr, *anomalies, *advise, *svgDir, *htmlOut, *clusterFl); err != nil {
		fmt.Fprintln(os.Stderr, "supremm:", err)
		os.Exit(1)
	}
}

// realmWithEvents pairs a realm with the run's log events for ANCOR.
type realmWithEvents struct {
	realm *core.Realm
	res   *sim.Result
}

func run(days, nodes int, seed int64, fig, table int, corr, anomalies bool, advise, svgDir, htmlOut, clusterName string) error {
	var setups []cluster.Config
	switch clusterName {
	case "":
		setups = []cluster.Config{
			cluster.RangerConfig().Scaled(nodes),
			cluster.Lonestar4Config().Scaled(nodes),
		}
	case "ranger":
		setups = []cluster.Config{cluster.RangerConfig().Scaled(nodes)}
	case "lonestar4":
		setups = []cluster.Config{cluster.Lonestar4Config().Scaled(nodes)}
	default:
		return fmt.Errorf("unknown cluster %q", clusterName)
	}

	var realms []realmWithEvents
	for _, cc := range setups {
		fmt.Fprintf(os.Stderr, "simulating %s: %d nodes, %d days...\n", cc.Name, cc.Nodes, days)
		cfg := sim.DefaultConfig(cc, seed)
		cfg.DurationMin = float64(days) * 24 * 60
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  %d jobs submitted, %d completed, %d log events\n",
			res.JobsSubmitted, res.JobsCompleted, len(res.Events))
		realms = append(realms, realmWithEvents{
			realm: core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), res.Store, res.Series),
			res:   res,
		})
	}

	out := os.Stdout
	all := fig == 0 && table == 0 && !corr && !anomalies && advise == ""

	coreRealms := make([]*core.Realm, len(realms))
	for i, re := range realms {
		coreRealms[i] = re.realm
	}

	if all || fig == 2 {
		if err := report.Fig2(out, coreRealms[0], 5); err != nil {
			return err
		}
	}
	if all || fig == 3 {
		if err := report.Fig3(out, coreRealms, []string{"namd", "amber", "gromacs"}); err != nil {
			return err
		}
	}
	for _, re := range realms {
		r := re.realm
		if all || fig == 4 {
			if err := report.Fig4(out, r); err != nil {
				return err
			}
		}
		if all || fig == 5 {
			if err := report.Fig5(out, r); err != nil {
				return err
			}
		}
		if all || table == 1 || fig == 6 {
			tab, err := r.Persistence(10)
			if err != nil {
				return err
			}
			if all || table == 1 {
				if _, err := fmt.Fprintf(out, "[%s]\n", r.Cluster); err != nil {
					return err
				}
				if err := report.Table1(out, tab); err != nil {
					return err
				}
			}
			if all || fig == 6 {
				if err := report.Fig6(out, r.Cluster, tab); err != nil {
					return err
				}
			}
		}
		if all || fig == 7 {
			if err := report.Fig7(out, r); err != nil {
				return err
			}
		}
		if all || fig == 8 {
			if err := report.Fig8(out, r); err != nil {
				return err
			}
		}
		if all || fig == 9 {
			if err := report.Fig9(out, r); err != nil {
				return err
			}
		}
		if all || fig == 10 {
			if err := report.Fig10(out, r); err != nil {
				return err
			}
		}
		if all || fig == 11 {
			if err := report.Fig11(out, r); err != nil {
				return err
			}
		}
		if all || fig == 12 {
			if err := report.Fig12(out, r); err != nil {
				return err
			}
		}
		if all || corr {
			if err := report.CorrelationReport(out, r); err != nil {
				return err
			}
		}
		if all || anomalies {
			if err := renderAnomalies(re); err != nil {
				return err
			}
		}
	}
	if all && len(coreRealms) > 1 {
		if err := renderComparison(out, coreRealms); err != nil {
			return err
		}
	}
	if advise != "" {
		if err := renderAdvice(out, advise, coreRealms); err != nil {
			return err
		}
	}
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		for _, r := range coreRealms {
			err := report.SVGFigures(r, func(name string) (io.WriteCloser, error) {
				return os.Create(filepath.Join(svgDir, name))
			})
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote vector figures to %s\n", svgDir)
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err != nil {
			return err
		}
		if err := report.HTMLDashboard(f, coreRealms...); err != nil {
			_ = f.Close() // render error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote dashboard to %s\n", htmlOut)
	}
	return nil
}

// renderAdvice prints the §4.3.1 system-selection report for one app.
func renderAdvice(out *os.File, app string, realms []*core.Realm) error {
	choice := core.AdviseSystem(app, realms...)
	t := report.NewTable(fmt.Sprintf("== which system suits %s (sec 4.3.1) ==", app),
		"cluster", "jobs", "node-hours", "rel. idle (x fleet)", "efficiency", "GF/s per core")
	for _, row := range choice.Rows {
		t.AddRow(row.Cluster, fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.0f", row.NodeHours),
			fmt.Sprintf("%.2f", row.RelativeIdle),
			fmt.Sprintf("%.1f%%", row.Efficiency*100),
			fmt.Sprintf("%.2f", row.FlopsPerCoreGF))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	var err error
	if choice.Best != "" {
		_, err = fmt.Fprintf(out, "recommendation: run %s on %s\n", app, choice.Best)
	} else {
		_, err = fmt.Fprintf(out, "not enough evidence to recommend a system for %s\n", app)
	}
	return err
}

// renderComparison prints the cross-system table for funding agencies
// (§4.3.6).
func renderComparison(out *os.File, realms []*core.Realm) error {
	cmp := core.CompareSystems(realms...)
	t := report.NewTable("== cross-system comparison (sec 4.3.6) ==",
		"cluster", "jobs", "node-hours", "efficiency", "mean TF", "% of peak", "mem used", "allocated")
	for _, row := range cmp.Rows {
		t.AddRow(row.Cluster, fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.0f", row.NodeHours),
			fmt.Sprintf("%.1f%%", row.Efficiency*100),
			fmt.Sprintf("%.2f", row.MeanTFlops),
			fmt.Sprintf("%.1f%%", row.PeakShare*100),
			fmt.Sprintf("%.1f%%", row.MemFraction*100),
			fmt.Sprintf("%.1f%%", row.AllocatedFraction*100))
	}
	return t.Render(out)
}

func renderAnomalies(re realmWithEvents) error {
	r := re.realm
	det := anomaly.NewDetector()
	found := det.Detect(r.Store, r.JobFilter(),
		[]store.Metric{store.MetricCPUIdle, store.MetricMemUsedMax, store.MetricScratchWrite})
	diags := anomaly.Link(found, re.res.Events)
	fmt.Printf("== ANCOR diagnoses, %s (%d anomalous jobs) ==\n", r.Cluster, len(diags))
	for i, d := range diags {
		if i >= 15 {
			fmt.Printf("  ... %d more\n", len(diags)-15)
			break
		}
		fmt.Println(" ", d.String())
	}
	t := report.NewTable("job completion failure profile by application",
		"app", "jobs", "completed", "failed", "timeout", "node_fail", "failure%")
	for _, p := range anomaly.FailureProfiles(r.Store, store.ByApp, r.JobFilter()) {
		t.AddRow(p.Key, fmt.Sprintf("%d", p.Jobs), fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Failed), fmt.Sprintf("%d", p.Timeout),
			fmt.Sprintf("%d", p.NodeFail), fmt.Sprintf("%.1f", p.FailurePct))
	}
	return t.Render(os.Stdout)
}

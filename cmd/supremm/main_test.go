package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunSingleFigures(t *testing.T) {
	// Small, fast configurations per figure; all figures exercised.
	for _, fig := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		if err := run(4, 16, 51, fig, 0, false, false, "", "", "", "ranger"); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
}

func TestRunTableAndExtras(t *testing.T) {
	if err := run(4, 16, 51, 0, 1, false, false, "", "", "", "lonestar4"); err != nil {
		t.Errorf("table 1: %v", err)
	}
	if err := run(4, 16, 51, 0, 0, true, false, "", "", "", "ranger"); err != nil {
		t.Errorf("corr: %v", err)
	}
	if err := run(4, 16, 51, 0, 0, false, true, "", "", "", "ranger"); err != nil {
		t.Errorf("anomalies: %v", err)
	}
	if err := run(4, 16, 51, 0, 0, false, false, "gromacs", "", "", ""); err != nil {
		t.Errorf("advise: %v", err)
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run(3, 12, 51, 4, 0, false, false, "", dir, "", "ranger"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Errorf("svg files = %d, want >= 4", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".svg") {
			t.Errorf("unexpected file %s", e.Name())
		}
	}
}

func TestRunHTMLDashboard(t *testing.T) {
	out := t.TempDir() + "/dash.html"
	if err := run(3, 12, 51, 4, 0, false, false, "", "", out, "ranger"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("dashboard missing inline figures")
	}
}

func TestRunRejectsUnknownCluster(t *testing.T) {
	if err := run(2, 8, 1, 4, 0, false, false, "", "", "", "summit"); err == nil {
		t.Error("unknown cluster should error")
	}
}

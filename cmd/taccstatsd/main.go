// Command taccstatsd demonstrates the monitor agent in isolation: it
// runs a single simulated node executing one job and writes the raw
// TACC_Stats format to stdout (or a file) in accelerated time — the §3
// data-collection story without the rest of the pipeline.
//
//	taccstatsd -job 12345 -samples 12 -cluster ranger
//
// For fault-model testing, -truncate-at N simulates the node crashing
// after N raw bytes: the output file ends mid-record, exactly as a
// power loss leaves it, and the daemon exits reporting the crash.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

func main() {
	var (
		clusterFl  = flag.String("cluster", "ranger", "preset cluster (ranger|lonestar4)")
		app        = flag.String("app", "namd", "application archetype")
		jobID      = flag.Int64("job", 12345, "job id for the begin/end marks")
		samples    = flag.Int("samples", 12, "periodic samples between job begin and end")
		out        = flag.String("out", "-", "output file ('-' for stdout)")
		seed       = flag.Int64("seed", 42, "job behaviour seed")
		truncateAt = flag.Int64("truncate-at", 0, "simulate a crash after writing this many bytes (0 = never)")
		retries    = flag.Int("write-retries", 2, "retries for transient write failures")
	)
	flag.Parse()
	if err := run(*clusterFl, *app, *jobID, *samples, *out, *seed, *truncateAt, *retries); err != nil {
		fmt.Fprintln(os.Stderr, "taccstatsd:", err)
		os.Exit(1)
	}
}

// errCrashed marks the deliberate mid-write stop -truncate-at triggers.
var errCrashed = errors.New("simulated crash: write limit reached")

// isTransient reports whether err declares itself Temporary(), the
// stdlib convention for retryable I/O failures.
func isTransient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// retrySink wraps a sink so transient write failures are retried with
// backoff instead of killing the daemon, while persistent write and
// close errors propagate to the caller — a monitor must neither die on
// a momentarily overloaded filesystem nor silently drop data.
type retrySink struct {
	w       io.WriteCloser
	retries int
	backoff func(attempt int)
}

func (s *retrySink) Write(p []byte) (int, error) {
	written := 0
	for attempt := 0; ; attempt++ {
		n, err := s.w.Write(p[written:])
		written += n
		if err == nil {
			return written, nil
		}
		if !isTransient(err) || attempt >= s.retries {
			return written, err
		}
		if s.backoff != nil {
			s.backoff(attempt + 1)
		}
	}
}

func (s *retrySink) Close() error { return s.w.Close() }

// crashWriter stops the node after limit bytes: the write that crosses
// the limit is cut short and errCrashed is returned, leaving the file
// truncated mid-line like a real crash mid-write.
type crashWriter struct {
	w         io.WriteCloser
	remaining int64
}

func (c *crashWriter) Write(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errCrashed
	}
	if int64(len(p)) <= c.remaining {
		c.remaining -= int64(len(p))
		return c.w.Write(p)
	}
	n, err := c.w.Write(p[:c.remaining])
	c.remaining = 0
	if err != nil {
		return n, err
	}
	return n, errCrashed
}

func (c *crashWriter) Close() error { return c.w.Close() }

// keepOpen lets stdout ride the WriteCloser plumbing without being
// closed out from under the process.
type keepOpen struct{ io.Writer }

func (keepOpen) Close() error { return nil }

func run(clusterName, appName string, jobID int64, samples int, out string, seed, truncateAt int64, retries int) error {
	var cc cluster.Config
	switch clusterName {
	case "ranger":
		cc = cluster.RangerConfig()
	case "lonestar4":
		cc = cluster.Lonestar4Config()
	default:
		return fmt.Errorf("unknown cluster %q", clusterName)
	}
	apps := workload.DefaultApps()
	a := workload.AppByName(apps, appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}

	backoff := func(attempt int) { time.Sleep(time.Duration(attempt) * 50 * time.Millisecond) }
	var crash *crashWriter
	rotations := 0
	// Each rotation opens a fresh sink (re-using a closed handle across
	// day boundaries would silently drop everything after day one); the
	// crash budget, when set, spans all of them like a node's lifetime.
	rotate := func(day int) (io.WriteCloser, error) {
		var sink io.WriteCloser
		if out == "-" {
			sink = keepOpen{os.Stdout}
		} else {
			name := out
			if rotations > 0 {
				name = fmt.Sprintf("%s.%d", out, day)
			}
			f, err := os.Create(name)
			if err != nil {
				return nil, err
			}
			sink = f
		}
		rotations++
		if truncateAt > 0 {
			if crash == nil {
				crash = &crashWriter{w: sink, remaining: truncateAt}
			} else {
				crash.w = sink
			}
			sink = crash
		}
		return &retrySink{w: sink, retries: retries, backoff: backoff}, nil
	}

	snap := procfs.NewNodeSnapshot(cc, "c000-000."+cc.Name)
	snap.Time = 1306886400
	mon := taccstats.NewMonitor(snap, cc.Arch, rotate)

	j := &workload.Job{
		ID: jobID, User: &workload.User{Name: "demo", Science: workload.Physics},
		App: a, Nodes: 1, RuntimeMin: float64(samples) * 10,
		IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1, Seed: seed,
	}
	b := workload.NewBehavior(j, cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB)

	err := func() error {
		if err := mon.BeginJob(jobID); err != nil {
			return err
		}
		for i := 0; i < samples; i++ {
			u := b.Step(10)
			applyUsage(snap, cc, u)
			snap.Time += 600
			if err := mon.Sample(); err != nil {
				return err
			}
		}
		return mon.EndJob(jobID)
	}()
	if errors.Is(err, errCrashed) {
		// The crash is the requested artifact, not a failure: the file
		// on disk is now a faithfully truncated raw file.
		_ = mon.Close() // a crashed node never closes cleanly
		fmt.Fprintf(os.Stderr, "taccstatsd: simulated crash after %d bytes (%d samples written)\n",
			truncateAt, mon.Samples())
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "taccstatsd: wrote %d samples, %d bytes\n", mon.Samples(), mon.TotalBytes())
	return mon.Close()
}

// applyUsage maps one interval's usage onto the node snapshot; a compact
// version of the sim engine's counter mapping for a single node.
func applyUsage(snap *procfs.Snapshot, cc cluster.Config, u workload.NodeUsage) {
	dtCS := 600.0 * 100
	for c := 0; c < cc.CoresPerNode(); c++ {
		dev := fmt.Sprintf("%d", c)
		snap.Add(procfs.TypeCPU, dev, "user", uint64(u.UserFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "system", uint64(u.SysFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "idle", uint64(u.IdleFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "iowait", uint64(u.IowaitFrac*dtCS))
		snap.Add(procfs.PMCType(cc.Arch), dev, "FLOPS", uint64(u.Flops/float64(cc.CoresPerNode())))
	}
	for s := 0; s < cc.SocketsPerNode; s++ {
		snap.Set(procfs.TypeMem, fmt.Sprintf("%d", s), "MemUsed", u.MemUsedKB/uint64(cc.SocketsPerNode))
	}
	snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", uint64(u.IBTxB))
	snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", uint64(u.IBRxB))
	snap.Add(procfs.TypeLlite, "scratch", "write_bytes", uint64(u.ScratchWriteB))
	snap.Add(procfs.TypeLlite, "work", "write_bytes", uint64(u.WorkWriteB))
	snap.Add(procfs.TypeLnet, "-", "tx_bytes", uint64(u.LnetTxB))
}

// Command taccstatsd demonstrates the monitor agent in isolation: it
// runs a single simulated node executing one job and writes the raw
// TACC_Stats format to stdout (or a file) in accelerated time — the §3
// data-collection story without the rest of the pipeline.
//
//	taccstatsd -job 12345 -samples 12 -cluster ranger
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

func main() {
	var (
		clusterFl = flag.String("cluster", "ranger", "preset cluster (ranger|lonestar4)")
		app       = flag.String("app", "namd", "application archetype")
		jobID     = flag.Int64("job", 12345, "job id for the begin/end marks")
		samples   = flag.Int("samples", 12, "periodic samples between job begin and end")
		out       = flag.String("out", "-", "output file ('-' for stdout)")
		seed      = flag.Int64("seed", 42, "job behaviour seed")
	)
	flag.Parse()
	if err := run(*clusterFl, *app, *jobID, *samples, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "taccstatsd:", err)
		os.Exit(1)
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func run(clusterName, appName string, jobID int64, samples int, out string, seed int64) error {
	var cc cluster.Config
	switch clusterName {
	case "ranger":
		cc = cluster.RangerConfig()
	case "lonestar4":
		cc = cluster.Lonestar4Config()
	default:
		return fmt.Errorf("unknown cluster %q", clusterName)
	}
	apps := workload.DefaultApps()
	a := workload.AppByName(apps, appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}

	var sink io.WriteCloser = nopCloser{os.Stdout}
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		sink = f
	}
	snap := procfs.NewNodeSnapshot(cc, "c000-000."+cc.Name)
	snap.Time = 1306886400
	mon := taccstats.NewMonitor(snap, cc.Arch, func(day int) (io.WriteCloser, error) { return sink, nil })

	j := &workload.Job{
		ID: jobID, User: &workload.User{Name: "demo", Science: workload.Physics},
		App: a, Nodes: 1, RuntimeMin: float64(samples) * 10,
		IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1, Seed: seed,
	}
	b := workload.NewBehavior(j, cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB)

	if err := mon.BeginJob(jobID); err != nil {
		return err
	}
	for i := 0; i < samples; i++ {
		u := b.Step(10)
		applyUsage(snap, cc, u)
		snap.Time += 600
		if err := mon.Sample(); err != nil {
			return err
		}
	}
	if err := mon.EndJob(jobID); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "taccstatsd: wrote %d samples, %d bytes\n", mon.Samples(), mon.TotalBytes())
	return mon.Close()
}

// applyUsage maps one interval's usage onto the node snapshot; a compact
// version of the sim engine's counter mapping for a single node.
func applyUsage(snap *procfs.Snapshot, cc cluster.Config, u workload.NodeUsage) {
	dtCS := 600.0 * 100
	for c := 0; c < cc.CoresPerNode(); c++ {
		dev := fmt.Sprintf("%d", c)
		snap.Add(procfs.TypeCPU, dev, "user", uint64(u.UserFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "system", uint64(u.SysFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "idle", uint64(u.IdleFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "iowait", uint64(u.IowaitFrac*dtCS))
		snap.Add(procfs.PMCType(cc.Arch), dev, "FLOPS", uint64(u.Flops/float64(cc.CoresPerNode())))
	}
	for s := 0; s < cc.SocketsPerNode; s++ {
		snap.Set(procfs.TypeMem, fmt.Sprintf("%d", s), "MemUsed", u.MemUsedKB/uint64(cc.SocketsPerNode))
	}
	snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", uint64(u.IBTxB))
	snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", uint64(u.IBRxB))
	snap.Add(procfs.TypeLlite, "scratch", "write_bytes", uint64(u.ScratchWriteB))
	snap.Add(procfs.TypeLlite, "work", "write_bytes", uint64(u.WorkWriteB))
	snap.Add(procfs.TypeLnet, "-", "tx_bytes", uint64(u.LnetTxB))
}

package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/taccstats"
)

func TestDaemonWritesParseableOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "node.raw")
	if err := run("ranger", "wrf", 777, 6, out, 9, 0, 2); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taccstats.ParseFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// begin + 6 samples + end.
	if len(parsed.Records) != 8 {
		t.Errorf("records = %d, want 8", len(parsed.Records))
	}
	if parsed.Records[0].Mark != "begin" || parsed.Records[0].JobID != 777 {
		t.Errorf("begin mark: %+v", parsed.Records[0])
	}
	if parsed.Records[7].Mark != "end" {
		t.Errorf("end mark: %+v", parsed.Records[7])
	}
	if parsed.Arch != "amd64_opteron" {
		t.Errorf("arch = %q", parsed.Arch)
	}
}

func TestDaemonLonestar(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ls4.raw")
	if err := run("lonestar4", "gromacs", 1, 2, out, 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taccstats.ParseFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Arch != "intel_westmere" {
		t.Errorf("arch = %q", parsed.Arch)
	}
	if _, ok := parsed.Schemas["intel_pmc"]; !ok {
		t.Error("missing intel_pmc schema")
	}
}

func TestDaemonErrors(t *testing.T) {
	if err := run("cray", "wrf", 1, 2, "-", 1, 0, 2); err == nil {
		t.Error("unknown cluster should error")
	}
	if err := run("ranger", "doom", 1, 2, "-", 1, 0, 2); err == nil {
		t.Error("unknown app should error")
	}
}

func TestDaemonTruncateAt(t *testing.T) {
	// A simulated crash after N bytes must leave exactly N bytes on
	// disk — a file cut mid-record — and report success (the truncated
	// artifact is the point).
	const limit = 1001
	out := filepath.Join(t.TempDir(), "crashed.raw")
	if err := run("ranger", "wrf", 777, 6, out, 9, limit, 2); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != limit {
		t.Fatalf("crashed file is %d bytes, want exactly %d", st.Size(), limit)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, perr := taccstats.ParseFile(f)
	if perr == nil && len(parsed.Records) >= 8 {
		t.Fatalf("crash-truncated file parsed as complete (%d records)", len(parsed.Records))
	}
}

// flakyWriter fails its first n writes with a transient error, and can
// fail Close.
type flakyWriter struct {
	failures int
	closeErr error
	data     []byte
	attempts int
}

type tempErr struct{}

func (tempErr) Error() string   { return "temporary stall" }
func (tempErr) Temporary() bool { return true }

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.attempts++
	if f.failures > 0 {
		f.failures--
		return 0, tempErr{}
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *flakyWriter) Close() error { return f.closeErr }

func TestRetrySinkRecoversTransientWrites(t *testing.T) {
	fw := &flakyWriter{failures: 2}
	var backoffs []int
	s := &retrySink{w: fw, retries: 3, backoff: func(a int) { backoffs = append(backoffs, a) }}
	n, err := s.Write([]byte("payload"))
	if err != nil || n != 7 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if string(fw.data) != "payload" {
		t.Fatalf("sink holds %q", fw.data)
	}
	if len(backoffs) != 2 {
		t.Fatalf("backoff calls = %v, want 2", backoffs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestRetrySinkPropagatesPersistentErrors(t *testing.T) {
	fw := &flakyWriter{failures: 10}
	s := &retrySink{w: fw, retries: 2}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("exhausted retries must propagate the write error")
	}
	if fw.attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", fw.attempts)
	}

	closeFail := errors.New("close failed")
	s2 := &retrySink{w: &flakyWriter{closeErr: closeFail}}
	if err := s2.Close(); !errors.Is(err, closeFail) {
		t.Fatalf("close error dropped: %v", err)
	}

	s3 := &retrySink{w: &permFailWriter{}, retries: 5}
	if _, err := s3.Write([]byte("x")); err == nil {
		t.Fatal("non-transient write errors must not be retried into success")
	}
}

type permFailWriter struct{}

func (permFailWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk on fire") }
func (permFailWriter) Close() error                { return nil }

package main

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/taccstats"
)

func TestDaemonWritesParseableOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "node.raw")
	if err := run("ranger", "wrf", 777, 6, out, 9); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taccstats.ParseFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// begin + 6 samples + end.
	if len(parsed.Records) != 8 {
		t.Errorf("records = %d, want 8", len(parsed.Records))
	}
	if parsed.Records[0].Mark != "begin" || parsed.Records[0].JobID != 777 {
		t.Errorf("begin mark: %+v", parsed.Records[0])
	}
	if parsed.Records[7].Mark != "end" {
		t.Errorf("end mark: %+v", parsed.Records[7])
	}
	if parsed.Arch != "amd64_opteron" {
		t.Errorf("arch = %q", parsed.Arch)
	}
}

func TestDaemonLonestar(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ls4.raw")
	if err := run("lonestar4", "gromacs", 1, 2, out, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taccstats.ParseFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Arch != "intel_westmere" {
		t.Errorf("arch = %q", parsed.Arch)
	}
	if _, ok := parsed.Schemas["intel_pmc"]; !ok {
		t.Error("missing intel_pmc schema")
	}
}

func TestDaemonErrors(t *testing.T) {
	if err := run("cray", "wrf", 1, 2, "-", 1); err == nil {
		t.Error("unknown cluster should error")
	}
	if err := run("ranger", "doom", 1, 2, "-", 1); err == nil {
		t.Error("unknown app should error")
	}
}

// Command supremmlint is the project's multichecker: it type-checks
// the tree and runs every analyzer in internal/analysis/suite over the
// packages its invariant governs. `make lint` wires it into the build;
// CI runs it on every push.
//
// Usage:
//
//	supremmlint [-C moduleDir] [packages...]
//
// With no package arguments it checks ./... . The exit status is 1 when
// any finding is reported, 2 on load/usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"supremm/internal/analysis"
	"supremm/internal/analysis/loadpkg"
	"supremm/internal/analysis/suite"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: supremmlint [-C moduleDir] [packages...]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, sc := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", sc.Name, sc.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(*dir, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supremmlint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// run loads the requested packages, applies the scoped suite and prints
// findings to w, returning them for the caller (and tests) to inspect.
func run(dir string, patterns []string, w io.Writer) ([]analysis.Diagnostic, error) {
	loader := loadpkg.New(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	analyzers := suite.Analyzers()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, sc := range analyzers {
			if !sc.PkgMatch(pkg.PkgPath) {
				continue
			}
			files := pkg.Files
			if sc.FileMatch != nil {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if sc.FileMatch(baseOf(loader.Fset.Position(f.Pos()).Filename)) {
						files = append(files, f)
					}
				}
				if len(files) == 0 {
					continue
				}
			}
			pass := &analysis.Pass{
				Analyzer:  sc.Analyzer,
				Fset:      loader.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
			}
			if err := sc.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", sc.Name, pkg.PkgPath, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return nil, err
		}
	}
	if _, err := fmt.Fprintf(w, "supremmlint: %d packages checked, %d analyzers, %d findings\n",
		len(pkgs), len(analyzers), len(diags)); err != nil {
		return nil, err
	}
	return diags, nil
}

func baseOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}

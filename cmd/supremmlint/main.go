// Command supremmlint is the project's multichecker: it type-checks
// the tree and runs every analyzer in internal/analysis/suite over the
// packages its invariant governs. `make lint` wires it into the build;
// CI runs it on every push and uploads the machine-readable findings.
//
// Usage:
//
//	supremmlint [-C moduleDir] [-json] [packages...]
//
// With no package arguments it checks ./... . -json replaces the
// human-readable lines with a JSON array of findings (file, line,
// column, analyzer, message) on stdout, moving the summary line to
// stderr so the artifact stays parseable.
//
// After all passes run, the driver cross-references every
// //supremmlint:allow directive against the findings each pass
// actually suppressed: a directive that suppressed nothing — its
// analyzer is gone, mis-scoped, or simply no longer fires there — is
// itself reported (analyzer "staleallow"). A dead allow is an
// undocumented hole in the invariant it once blessed.
//
// The exit status is 1 when any finding (including a stale allow) is
// reported, 2 on load/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"supremm/internal/analysis"
	"supremm/internal/analysis/loadpkg"
	"supremm/internal/analysis/suite"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: supremmlint [-C moduleDir] [-json] [packages...]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, sc := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", sc.Name, sc.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", analysis.StaleAllowAnalyzerName,
			"flags //supremmlint:allow directives that no longer suppress anything")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(*dir, patterns, *jsonOut, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supremmlint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable record CI archives per finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run loads the requested packages, applies the scoped suite plus the
// stale-allow check, and prints findings to out (summary to errw),
// returning them for the caller (and tests) to inspect.
func run(dir string, patterns []string, jsonOut bool, out, errw io.Writer) ([]analysis.Diagnostic, error) {
	start := time.Now()
	loader := loadpkg.New(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	analyzers := suite.Analyzers()
	known := map[string]bool{analysis.StaleAllowAnalyzerName: true}
	for _, sc := range analyzers {
		known[sc.Name] = true
	}
	// used accumulates, per analyzer, the directive lines that
	// suppressed at least one finding; allows is every directive seen.
	used := make(map[string]map[string]map[int]bool)
	var allows []analysis.AllowDirective
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		allows = append(allows, analysis.CollectAllows(loader.Fset, pkg.Files)...)
		for _, sc := range analyzers {
			if !sc.PkgMatch(pkg.PkgPath) {
				continue
			}
			files := pkg.Files
			if sc.FileMatch != nil {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if sc.FileMatch(baseOf(loader.Fset.Position(f.Pos()).Filename)) {
						files = append(files, f)
					}
				}
				if len(files) == 0 {
					continue
				}
			}
			pass := &analysis.Pass{
				Analyzer:  sc.Analyzer,
				Fset:      loader.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
			}
			if err := sc.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", sc.Name, pkg.PkgPath, err)
			}
			diags = append(diags, pass.Diagnostics()...)
			for file, lines := range pass.UsedAllows() {
				byFile := used[sc.Name]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					used[sc.Name] = byFile
				}
				if byFile[file] == nil {
					byFile[file] = make(map[int]bool)
				}
				for line := range lines {
					byFile[file][line] = true
				}
			}
		}
	}
	diags = append(diags, analysis.StaleAllows(allows, used, known)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if jsonOut {
		records := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			records = append(records, jsonFinding{
				File:     relativeTo(dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			return nil, err
		}
	} else {
		for _, d := range diags {
			if _, err := fmt.Fprintln(out, d); err != nil {
				return nil, err
			}
		}
	}
	summaryTo := out
	if jsonOut {
		summaryTo = errw
	}
	if _, err := fmt.Fprintf(summaryTo, "supremmlint: %d packages checked, %d analyzers, %d findings in %s\n",
		len(pkgs), len(analyzers)+1, len(diags), time.Since(start).Round(time.Millisecond)); err != nil {
		return nil, err
	}
	return diags, nil
}

// relativeTo rewrites filename relative to the module dir when it sits
// inside it, keeping JSON artifacts stable across checkouts.
func relativeTo(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return filename
	}
	return rel
}

func baseOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}

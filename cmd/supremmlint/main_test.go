package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module named supremm so the suite's
// package scopes ("supremm/internal/serve", ...) apply to the fixture
// packages.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module supremm\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const seededServe = `package serve

import "sync"

type Server struct {
	mu sync.Mutex
	n  int
}

// Bad leaks the mutex on the early return.
func (s *Server) Bad() int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n
	}
	s.mu.Unlock()
	return 0
}

// Good releases on every path.
func (s *Server) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n //supremmlint:allow walltime: nothing here ever fired this
}
`

func TestRunReportsSeededViolationAndStaleAllow(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/serve/serve.go": seededServe,
	})
	var out, errw bytes.Buffer
	diags, err := run(dir, []string{"./..."}, false, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var sawLock, sawStale bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lockcheck":
			sawLock = true
			if !strings.Contains(d.Message, "s.mu.Lock is not released") {
				t.Errorf("lockcheck message = %q", d.Message)
			}
		case "staleallow":
			sawStale = true
			if !strings.Contains(d.Message, "walltime") {
				t.Errorf("staleallow message = %q", d.Message)
			}
		default:
			t.Errorf("unexpected analyzer %s: %s", d.Analyzer, d.Message)
		}
	}
	if !sawLock {
		t.Error("seeded lockcheck violation not reported")
	}
	if !sawStale {
		t.Error("stale walltime allow not reported")
	}
	if !strings.Contains(out.String(), "supremmlint:") {
		t.Errorf("summary missing from output: %q", out.String())
	}
	if !strings.Contains(out.String(), " in ") {
		t.Errorf("summary missing timing: %q", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/serve/serve.go": seededServe,
	})
	var out, errw bytes.Buffer
	diags, err := run(dir, []string{"./..."}, true, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var records []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &records); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(records) != len(diags) {
		t.Fatalf("JSON has %d records, run returned %d diagnostics", len(records), len(diags))
	}
	for _, r := range records {
		if r.File != filepath.Join("internal", "serve", "serve.go") {
			t.Errorf("file not relativized to module dir: %q", r.File)
		}
		if r.Line <= 0 || r.Column <= 0 || r.Analyzer == "" || r.Message == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}
	// The summary moves to stderr so stdout stays parseable.
	if strings.Contains(out.String(), "packages checked") {
		t.Error("summary leaked into JSON stdout")
	}
	if !strings.Contains(errw.String(), "packages checked") {
		t.Errorf("summary missing from stderr: %q", errw.String())
	}
}

func TestRunCleanFixtureHasNoFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/serve/serve.go": `package serve

import "sync"

type Server struct {
	mu sync.Mutex
	n  int
}

func (s *Server) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`,
	})
	var out, errw bytes.Buffer
	diags, err := run(dir, []string{"./..."}, false, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/sched"
	"supremm/internal/store"
)

func TestRunWritesAllArtefacts(t *testing.T) {
	out := t.TempDir()
	if err := run("ranger", 8, 1, 3, out, false, "", ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"accounting.log", "events.log", "lariat.jsonl", "jobs.jsonl", "series.jsonl"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
		}
	}
	// The artefacts parse.
	af, err := os.Open(filepath.Join(out, "accounting.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	acct, err := sched.ReadAcct(af)
	if err != nil {
		t.Fatal(err)
	}
	if len(acct) == 0 {
		t.Error("empty accounting")
	}
	jf, err := os.Open(filepath.Join(out, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Error("empty store")
	}
}

func TestRunRawMode(t *testing.T) {
	out := t.TempDir()
	if err := run("lonestar4", 4, 1, 5, out, true, "", ""); err != nil {
		t.Fatal(err)
	}
	hosts, err := os.ReadDir(filepath.Join(out, "raw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 {
		t.Errorf("raw host dirs = %d", len(hosts))
	}
}

func TestRunSWFExportAndReplay(t *testing.T) {
	out := t.TempDir()
	swf := filepath.Join(out, "trace.swf")
	if err := run("ranger", 8, 2, 3, out, false, swf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(swf); err != nil {
		t.Fatal("swf trace not written")
	}
	// Replay the exported trace into a second run.
	out2 := t.TempDir()
	if err := run("ranger", 8, 2, 3, out2, false, "", swf); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(filepath.Join(out2, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Error("replay produced no job records")
	}
}

func TestRunRejectsUnknownCluster(t *testing.T) {
	if err := run("bluewaters", 4, 1, 5, t.TempDir(), false, "", ""); err == nil {
		t.Error("unknown cluster should error")
	}
}

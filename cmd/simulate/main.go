// Command simulate runs one cluster simulation and writes its artefacts
// to disk: raw TACC_Stats files (optional), the accounting log, the
// rationalized event log, Lariat summaries, the job-record store and the
// system series. These are the inputs of cmd/ingest and cmd/xdmod.
//
//	simulate -cluster ranger -nodes 64 -days 14 -out ./data -raw
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"supremm/internal/cluster"
	"supremm/internal/eventlog"
	"supremm/internal/lariat"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
	"supremm/internal/workload"
)

func main() {
	var (
		clusterFl = flag.String("cluster", "ranger", "preset cluster (ranger|lonestar4|stampede)")
		nodes     = flag.Int("nodes", 64, "node count")
		days      = flag.Int("days", 14, "simulated days")
		seed      = flag.Int64("seed", 1, "simulation seed")
		out       = flag.String("out", "data", "output directory")
		raw       = flag.Bool("raw", false, "also write raw TACC_Stats files (slower)")
		swfOut    = flag.String("swf", "", "also export the job stream as an SWF trace file")
		traceIn   = flag.String("trace", "", "replay this SWF trace instead of generating a workload")
	)
	flag.Parse()
	if err := run(*clusterFl, *nodes, *days, *seed, *out, *raw, *swfOut, *traceIn); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(clusterName string, nodes, days int, seed int64, out string, raw bool, swfOut, traceIn string) error {
	var cc cluster.Config
	switch clusterName {
	case "ranger":
		cc = cluster.RangerConfig().Scaled(nodes)
	case "lonestar4":
		cc = cluster.Lonestar4Config().Scaled(nodes)
	case "stampede":
		cc = cluster.StampedeConfig().Scaled(nodes)
	default:
		return fmt.Errorf("unknown cluster %q", clusterName)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	cfg := sim.DefaultConfig(cc, seed)
	cfg.DurationMin = float64(days) * 24 * 60
	if raw {
		cfg.RawDir = filepath.Join(out, "raw")
	}
	if traceIn != "" {
		tf, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		jobs, err := workload.ReadSWF(tf, cc.CoresPerNode(), workload.DefaultApps(), seed)
		_ = tf.Close() // read-only file; nothing to lose on close
		if err != nil {
			return err
		}
		cfg.Jobs = jobs
		fmt.Fprintf(os.Stderr, "replaying %d jobs from %s\n", len(jobs), traceIn)
	}
	if swfOut != "" {
		stream := cfg.Jobs
		if stream == nil {
			gen := cfg.Gen
			gen.HorizonMin = cfg.DurationMin
			stream = workload.NewGenerator(gen).Generate()
			cfg.Jobs = stream
		}
		sf, err := os.Create(swfOut)
		if err != nil {
			return err
		}
		if err := workload.WriteSWF(sf, stream, cc.CoresPerNode()); err != nil {
			_ = sf.Close() // write error wins
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote SWF trace %s (%d jobs)\n", swfOut, len(stream))
	}
	fmt.Fprintf(os.Stderr, "simulating %s: %d nodes, %d days (raw=%v)...\n", cc.Name, nodes, days, raw)
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	if err := writeFile(filepath.Join(out, "accounting.log"), func(f *os.File) error {
		return sched.WriteAcct(f, res.Acct)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "events.log"), func(f *os.File) error {
		return eventlog.WriteEvents(f, res.Events)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "lariat.jsonl"), func(f *os.File) error {
		return lariat.Write(f, res.Lariat)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "jobs.jsonl"), func(f *os.File) error {
		return res.Store.Save(f)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "series.jsonl"), func(f *os.File) error {
		return store.SaveSeries(f, res.Series)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d jobs, %d samples, %d events, %d acct records\n",
		out, res.Store.Len(), len(res.Series), len(res.Events), len(res.Acct))
	if raw {
		fmt.Fprintf(os.Stderr, "raw volume: %.1f MB (%d monitor samples)\n",
			float64(res.MonitorBytes)/1e6, res.MonitorSamples)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // write error wins
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// Extension benchmarks: the forecaster (the abstract's "limited
// predictive capability"), the sysstat/SAR baseline comparison (§1.2,
// §2), the scheduling-policy ablation including the paper's §4.3.4
// future-work complementary policy, application-kernel audits (XDMoD
// ref [2]) and the gzip volume accounting (§4.1's 60 GB -> 20 GB).
package supremm_test

import (
	"bytes"
	"io"
	"testing"

	"supremm/internal/appkernels"
	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/procfs"
	"supremm/internal/sarbaseline"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// BenchmarkForecastSkill measures the persistence forecaster and
// reports its skill against climatology at the paper's offsets — the
// operational payoff of Table 1.
func BenchmarkForecastSkill(b *testing.B) {
	f := load(b)
	fc, err := f.ranger.NewForecaster("cpu_flops", 10)
	if err != nil {
		b.Fatal(err)
	}
	var short, long float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s10, err := fc.Evaluate(f.ranger.Series, 10)
		if err != nil {
			b.Fatal(err)
		}
		s1000, err := fc.Evaluate(f.ranger.Series, 1000)
		if err != nil {
			b.Fatal(err)
		}
		short, long = s10.Skill, s1000.Skill
	}
	b.ReportMetric(short, "skill_10min")
	b.ReportMetric(long, "skill_1000min")
}

// BenchmarkBaselineSAR contrasts the stock sysstat/SAR stack with
// TACC_Stats on the same node-day: bytes written, streams/formats
// required, and — the paper's core argument — key-metric coverage.
func BenchmarkBaselineSAR(b *testing.B) {
	cc := cluster.RangerConfig()
	var sarBytes, taccBytes int
	for i := 0; i < b.N; i++ {
		snap := procfs.NewNodeSnapshot(cc, "node")
		snap.Time = 1306886400
		var cpuB, memB, netB bytes.Buffer
		sar := sarbaseline.NewSampler(&cpuB, &memB, &netB)
		var taccB bytes.Buffer
		mon := taccstats.NewMonitor(snap, cc.Arch, func(day int) (io.WriteCloser, error) {
			return nopWriteCloser{&taccB}, nil
		})
		j := &workload.Job{
			ID: 1, User: &workload.User{Name: "u"}, App: workload.DefaultApps()[0],
			Nodes: 1, IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1, Seed: 3,
		}
		bh := workload.NewBehavior(j, cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB)
		for s := 0; s < 144; s++ {
			u := bh.Step(10)
			applyBenchUsage(snap, cc, u)
			snap.Time += 600
			if err := sar.Sample(snap); err != nil {
				b.Fatal(err)
			}
			if err := mon.Sample(); err != nil {
				b.Fatal(err)
			}
		}
		mon.Close()
		sarBytes = cpuB.Len() + memB.Len() + netB.Len()
		taccBytes = int(taccB.Len())
	}
	b.ReportMetric(float64(sarBytes)/1e3, "sar_kb_per_node_day")
	b.ReportMetric(float64(taccBytes)/1e3, "tacc_kb_per_node_day")
	b.ReportMetric(float64(len(sarbaseline.CoveredMetrics())), "sar_key_metrics_covered")
	b.ReportMetric(float64(len(store.KeyMetrics())), "tacc_key_metrics_covered")
	b.ReportMetric(3, "sar_formats_required")
	b.ReportMetric(1, "tacc_formats_required")
}

// applyBenchUsage maps usage onto the counters SAR can see (plus the
// PMC/Lustre counters only TACC_Stats reads).
func applyBenchUsage(snap *procfs.Snapshot, cc cluster.Config, u workload.NodeUsage) {
	dtCS := 600.0 * 100
	for c := 0; c < cc.CoresPerNode(); c++ {
		dev := snap.Type(procfs.TypeCPU).Devices()[c]
		snap.Add(procfs.TypeCPU, dev, "user", uint64(u.UserFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "system", uint64(u.SysFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "idle", uint64(u.IdleFrac*dtCS))
		snap.Add(procfs.TypeCPU, dev, "iowait", uint64(u.IowaitFrac*dtCS))
		snap.Add(procfs.PMCType(cc.Arch), dev, "FLOPS", uint64(u.Flops/float64(cc.CoresPerNode())))
	}
	for s := 0; s < cc.SocketsPerNode; s++ {
		dev := snap.Type(procfs.TypeMem).Devices()[s]
		snap.Set(procfs.TypeMem, dev, "MemUsed", u.MemUsedKB/uint64(cc.SocketsPerNode))
	}
	snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", uint64(u.IBTxB))
	snap.Add(procfs.TypeLlite, "scratch", "write_bytes", uint64(u.ScratchWriteB))
	snap.Add(procfs.TypeNet, "eth0", "tx_bytes", uint64(u.EthTxB))
	snap.Add(procfs.TypeNet, "eth0", "rx_bytes", uint64(u.EthRxB))
}

// BenchmarkRawVolumeCompressed measures the gzip-rotated volume — the
// paper's 60 GB/month uncompressed vs 20 GB compressed (§4.1).
func BenchmarkRawVolumeCompressed(b *testing.B) {
	cc := cluster.RangerConfig()
	var plain, compressed int64
	for i := 0; i < b.N; i++ {
		write := func(rotate taccstats.RotateFunc) *countingWriter {
			snap := procfs.NewNodeSnapshot(cc, "node")
			snap.Time = 1306886400
			j := &workload.Job{
				ID: 1, User: &workload.User{Name: "u"}, App: workload.DefaultApps()[0],
				Nodes: 1, IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1, Seed: 5,
			}
			bh := workload.NewBehavior(j, cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB)
			mon := taccstats.NewMonitor(snap, cc.Arch, rotate)
			for s := 0; s < 144; s++ {
				applyBenchUsage(snap, cc, bh.Step(10))
				snap.Time += 600
				if err := mon.Sample(); err != nil {
					b.Fatal(err)
				}
			}
			mon.Close()
			return nil
		}
		pc := &countingWriter{}
		write(func(day int) (io.WriteCloser, error) { return pc, nil })
		ccw := &countingWriter{}
		write(taccstats.GzipRotate(func(day int) (io.WriteCloser, error) { return ccw, nil }))
		plain, compressed = pc.n, ccw.n
	}
	b.ReportMetric(float64(plain)/1e6, "plain_mb_per_node_day")
	b.ReportMetric(float64(compressed)/1e6, "gzip_mb_per_node_day")
	b.ReportMetric(float64(plain)/float64(compressed), "compression_ratio")
}

// BenchmarkAblationSchedPolicy compares the scheduling disciplines on
// identical offered load: strict FIFO, EASY backfill (production), and
// the paper's future-work complementary policy. Reported: realized
// utilization and mean queue wait per policy.
func BenchmarkAblationSchedPolicy(b *testing.B) {
	run := func(policy sched.Policy) (util, waitMin float64) {
		cc := cluster.RangerConfig().Scaled(48)
		cfg := sim.DefaultConfig(cc, 2013)
		cfg.DurationMin = 14 * 24 * 60
		cfg.Shutdowns = nil
		cfg.NodeMTBFHours = 0
		cfg.Policy = policy
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var busy float64
		for _, s := range res.Series {
			busy += float64(s.BusyNodes)
		}
		util = busy / float64(len(res.Series)) / 48
		waitMin = sched.ComputeWaitStats(res.Acct).MeanWaitMin
		return util, waitMin
	}
	var fifoU, easyU, compU, fifoW, easyW, compW float64
	for i := 0; i < b.N; i++ {
		fifoU, fifoW = run(sched.PolicyFIFO)
		easyU, easyW = run(sched.PolicyEASY)
		compU, compW = run(sched.PolicyComplementary)
	}
	b.ReportMetric(fifoU*100, "fifo_util_pct")
	b.ReportMetric(easyU*100, "easy_util_pct")
	b.ReportMetric(compU*100, "compl_util_pct")
	b.ReportMetric(fifoW, "fifo_wait_min")
	b.ReportMetric(easyW, "easy_wait_min")
	b.ReportMetric(compW, "compl_wait_min")
}

// BenchmarkAppKernels runs the audit suite end to end: inject kernels,
// simulate, extract series, audit. Reported: runs per kernel and the
// healthy-system verdict.
func BenchmarkAppKernels(b *testing.B) {
	var verdicts []appkernels.Verdict
	for i := 0; i < b.N; i++ {
		cc := cluster.RangerConfig().Scaled(24)
		cfg := sim.DefaultConfig(cc, 17)
		cfg.DurationMin = 14 * 24 * 60
		cfg.Shutdowns = nil
		cfg.NodeMTBFHours = 0
		cfg.Gen.HorizonMin = cfg.DurationMin
		ks := appkernels.DefaultKernels(workload.DefaultApps())
		production := workload.NewGenerator(cfg.Gen).Generate()
		cfg.Jobs = appkernels.Inject(production, ks, cfg.DurationMin, 1_000_000, 17)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		verdicts = appkernels.NewAuditor().AuditAll(res.Store, ks)
	}
	degraded := 0
	runs := 0
	for _, v := range verdicts {
		if v.Degraded {
			degraded++
		}
		runs += v.Runs
	}
	b.ReportMetric(float64(len(verdicts)), "kernels_audited")
	b.ReportMetric(float64(runs), "kernel_runs")
	b.ReportMetric(float64(degraded), "false_alarms")
}

// BenchmarkIngestRaw measures the ETL throughput of the raw path:
// parsing and joining one node-day of TACC_Stats text.
func BenchmarkIngestRaw(b *testing.B) {
	// Prepared once: a small raw-mode run.
	cc := cluster.RangerConfig().Scaled(8)
	cfg := sim.DefaultConfig(cc, 23)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.UtilizationTarget = 2
	cfg.RawDir = b.TempDir()
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := ingestRaw(cfg.RawDir, res)
		if err != nil {
			b.Fatal(err)
		}
		if rr == 0 {
			b.Fatal("no records ingested")
		}
	}
	b.SetBytes(res.MonitorBytes)
}

func ingestRaw(dir string, res *sim.Result) (int, error) {
	rr, err := ingest.IngestRaw(dir, res.Acct)
	if err != nil {
		return 0, err
	}
	return rr.Store.Len(), nil
}

// BenchmarkIngestParallel compares the sequential ETL against the
// per-host worker pool on the same raw tree (results are asserted
// byte-identical by TestIngestRawParallelMatchesSequential).
func BenchmarkIngestParallel(b *testing.B) {
	cc := cluster.RangerConfig().Scaled(16)
	cfg := sim.DefaultConfig(cc, 29)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.UtilizationTarget = 2
	cfg.RawDir = b.TempDir()
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ingest.IngestRaw(cfg.RawDir, res.Acct); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(res.MonitorBytes)
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ingest.IngestRawParallel(cfg.RawDir, res.Acct, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(res.MonitorBytes)
	})
}

// BenchmarkStampedeSimulation exercises the §5 Stampede preset through
// the engine (the "will soon be deployed on Stampede" forward claim).
func BenchmarkStampedeSimulation(b *testing.B) {
	cc := cluster.StampedeConfig().Scaled(32)
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(cc, 37)
		cfg.DurationMin = 7 * 24 * 60
		cfg.Shutdowns = nil
		var err error
		res, err = sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Store.Len()), "jobs")
	var busy float64
	for _, s := range res.Series {
		busy += float64(s.BusyNodes)
	}
	b.ReportMetric(busy/float64(len(res.Series))/32*100, "util_pct")
}

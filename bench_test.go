// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the §3 monitor-cost benchmarks and the ablations
// called out in DESIGN.md §6. Each figure benchmark measures the cost of
// regenerating that figure's analysis over a fixed simulated dataset and
// reports the figure's headline quantities via b.ReportMetric, so a
// `go test -bench=.` run records both performance and the reproduced
// shapes (collected into EXPERIMENTS.md).
package supremm_test

import (
	"io"
	"math"
	"sync"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/procfs"
	"supremm/internal/report"
	"supremm/internal/sim"
	"supremm/internal/stats"
	"supremm/internal/store"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// fixture holds the shared simulated datasets: a Ranger-like and a
// Lonestar4-like realm (128 nodes, 30 days, 10-minute sampling).
type fixture struct {
	ranger *core.Realm
	ls4    *core.Realm
	res    *sim.Result // the Ranger run's full result (events etc.)
}

var (
	fixOnce sync.Once
	fix     fixture
)

func load(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		build := func(cc cluster.Config) (*core.Realm, *sim.Result) {
			cfg := sim.DefaultConfig(cc, 2013)
			cfg.DurationMin = 30 * 24 * 60
			res, err := sim.Run(cfg)
			if err != nil {
				panic(err)
			}
			return core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
				cc.PeakTFlops(), res.Store, res.Series), res
		}
		var rres *sim.Result
		fix.ranger, rres = build(cluster.RangerConfig().Scaled(128))
		fix.ls4, _ = build(cluster.Lonestar4Config().Scaled(128))
		fix.res = rres
	})
	return &fix
}

// BenchmarkFig2UserProfiles regenerates Fig 2: normalized 8-metric
// profiles of the five heaviest users.
func BenchmarkFig2UserProfiles(b *testing.B) {
	f := load(b)
	var profiles []core.Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles = f.ranger.TopUserProfiles(5)
	}
	b.StopTimer()
	// Headline: inter-user variability (max pairwise profile distance).
	var dmax float64
	for i := range profiles {
		for j := i + 1; j < len(profiles); j++ {
			dmax = math.Max(dmax, core.ProfileDistance(profiles[i], profiles[j]))
		}
	}
	b.ReportMetric(dmax, "profile_variability")
	b.ReportMetric(float64(len(profiles)), "users")
}

// BenchmarkFig3AppProfiles regenerates Fig 3: the MD codes across both
// clusters. Headlines: AMBER's idle relative to NAMD, and the
// cross-cluster distance gap between NAMD and GROMACS.
func BenchmarkFig3AppProfiles(b *testing.B) {
	f := load(b)
	apps := []string{"namd", "amber", "gromacs"}
	var rp, lp []core.Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp = f.ranger.AppProfiles(apps)
		lp = f.ls4.AppProfiles(apps)
	}
	b.StopTimer()
	amberOverNamd := rp[1].Normalized[store.MetricCPUIdle] / rp[0].Normalized[store.MetricCPUIdle]
	b.ReportMetric(amberOverNamd, "amber_idle_over_namd")
	b.ReportMetric(core.ProfileDistance(rp[0], lp[0]), "namd_xcluster_dist")
	b.ReportMetric(core.ProfileDistance(rp[2], lp[2]), "gromacs_xcluster_dist")
}

// BenchmarkFig4Efficiency regenerates Fig 4: per-user node-hours vs
// wasted node-hours. Headlines: fleet efficiency per cluster (paper:
// 90% Ranger, 85% Lonestar4) and the worst heavy user's idle fraction
// (paper: 87-89%).
func BenchmarkFig4Efficiency(b *testing.B) {
	f := load(b)
	var report []core.UserEfficiency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report = f.ranger.EfficiencyReport()
	}
	b.StopTimer()
	b.ReportMetric(f.ranger.FleetEfficiency()*100, "ranger_efficiency_pct")
	b.ReportMetric(f.ls4.FleetEfficiency()*100, "ls4_efficiency_pct")
	if worst := f.ranger.WorstUsers(1, 50); len(worst) > 0 {
		b.ReportMetric(worst[0].IdleFrac*100, "worst_user_idle_pct")
	}
	b.ReportMetric(float64(len(report)), "users")
}

// BenchmarkFig5AnomalousUsers regenerates Fig 5: the circled user's
// profile. Headline: their normalized cpu_idle (paper: 8x the average
// Ranger user) and the largest other axis (paper: normal usage).
func BenchmarkFig5AnomalousUsers(b *testing.B) {
	f := load(b)
	var p core.Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst := f.ranger.WorstUsers(1, 50)
		p = f.ranger.UserProfile(worst[0].User)
	}
	b.StopTimer()
	b.ReportMetric(p.Normalized[store.MetricCPUIdle], "idle_x_fleet")
	other := 0.0
	for m, v := range p.Normalized {
		if m != store.MetricCPUIdle && v > other {
			other = v
		}
	}
	b.ReportMetric(other, "max_other_axis_x_fleet")
}

// BenchmarkTable1Persistence regenerates Table 1. Headlines: the
// 10-minute and 1000-minute ratios of cpu_flops (paper: 0.123 and
// 0.889) and the write column's 10-minute ratio (paper: 0.311, the
// least persistent metric).
func BenchmarkTable1Persistence(b *testing.B) {
	f := load(b)
	var tab *core.PersistenceTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = f.ranger.Persistence(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(tab.Ratios["cpu_flops"][0], "flops_ratio_10min")
	b.ReportMetric(tab.Ratios["cpu_flops"][4], "flops_ratio_1000min")
	b.ReportMetric(tab.Ratios["io_scratch_write"][0], "write_ratio_10min")
	b.ReportMetric(tab.Fits["cpu_flops"].R2, "flops_fit_r2")
}

// BenchmarkFig6PersistenceFit regenerates Fig 6: the combined log fit.
// Headlines: slope, intercept, R^2 (paper Ranger: 0.36, -0.17, 0.87;
// Lonestar4: 0.42, -0.28, 0.93) and the prediction horizons.
func BenchmarkFig6PersistenceFit(b *testing.B) {
	f := load(b)
	var rt, lt *core.PersistenceTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, _ = f.ranger.Persistence(10)
		lt, _ = f.ls4.Persistence(10)
	}
	b.StopTimer()
	b.ReportMetric(rt.Combined.Slope, "ranger_slope")
	b.ReportMetric(rt.Combined.Intercept, "ranger_intercept")
	b.ReportMetric(rt.Combined.R2, "ranger_r2")
	b.ReportMetric(lt.Combined.Slope, "ls4_slope")
	b.ReportMetric(lt.Combined.R2, "ls4_r2")
	b.ReportMetric(rt.PredictionHorizonMin(0.9), "ranger_horizon_min")
	b.ReportMetric(lt.PredictionHorizonMin(0.9), "ls4_horizon_min")
}

// BenchmarkFig7SystemReports regenerates the three Fig 7 reports.
func BenchmarkFig7SystemReports(b *testing.B) {
	f := load(b)
	var sciences []core.ScienceMemory
	var hours core.CPUHours
	var lustre []core.LustreMountReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sciences = f.ranger.MemoryByScience()
		hours = f.ranger.CPUHoursReport()
		lustre = f.ranger.LustreByMount()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(sciences)), "science_rows")
	b.ReportMetric(hours.IdleCoreHours/hours.TotalCoreHours*100, "idle_share_pct")
	b.ReportMetric(lustre[0].MeanMBps, "scratch_mean_mbps")
}

// BenchmarkFig8ActiveNodes regenerates Fig 8. Headlines: zero-sample
// count (shutdown dips) and mean active nodes.
func BenchmarkFig8ActiveNodes(b *testing.B) {
	f := load(b)
	var a core.ActiveNodesSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = f.ranger.ActiveNodesReport()
	}
	b.StopTimer()
	b.ReportMetric(a.MeanActive, "mean_active_nodes")
	b.ReportMetric(float64(a.ZeroSamples), "outage_samples")
}

// BenchmarkFig9Flops regenerates Fig 9. Headlines: delivered mean and
// peak as fractions of machine peak (paper: <20/579 mean, <50/579 max).
func BenchmarkFig9Flops(b *testing.B) {
	f := load(b)
	var s core.FlopsSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = f.ranger.FlopsReport()
	}
	b.StopTimer()
	b.ReportMetric(s.MeanFraction*100, "mean_pct_of_peak")
	b.ReportMetric(s.PeakFraction*100, "max_pct_of_peak")
}

// BenchmarkFig10FlopsKDE regenerates Fig 10: the FLOPS kernel density.
// Headline: the mode as a fraction of machine peak.
func BenchmarkFig10FlopsKDE(b *testing.B) {
	f := load(b)
	var kde *stats.KDE
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kde, _ = f.ranger.FlopsDistribution(512)
	}
	b.StopTimer()
	b.ReportMetric(kde.Mode()/f.ranger.PeakTFlops*100, "mode_pct_of_peak")
}

// BenchmarkFig11Memory regenerates Fig 11. Headlines: mean memory per
// node as a fraction of capacity on both clusters (paper: <10/32 GB on
// Ranger, ~15/24 GB on Lonestar4).
func BenchmarkFig11Memory(b *testing.B) {
	f := load(b)
	var rm, lm core.MemorySummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm = f.ranger.MemoryReport()
		lm = f.ls4.MemoryReport()
	}
	b.StopTimer()
	b.ReportMetric(rm.MeanFraction*100, "ranger_mem_pct")
	b.ReportMetric(lm.MeanFraction*100, "ls4_mem_pct")
}

// BenchmarkFig12MemoryKDE regenerates Fig 12: the mem_used and
// mem_used_max densities. Headline: the job-max mean as a fraction of
// capacity on both clusters (paper: ~50% on Ranger, near capacity on
// Lonestar4).
func BenchmarkFig12MemoryKDE(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ranger.MemoryDistribution(512)
	}
	b.StopTimer()
	rm, lm := f.ranger.MemoryReport(), f.ls4.MemoryReport()
	b.ReportMetric(rm.JobMaxMeanGB/rm.CapacityGB*100, "ranger_jobmax_pct")
	b.ReportMetric(lm.JobMaxMeanGB/lm.CapacityGB*100, "ls4_jobmax_pct")
}

// BenchmarkMetricCorrelation regenerates the §4.2 correlation analysis
// behind the eight-metric selection. Headlines: the two motivating
// correlations the paper quotes.
func BenchmarkMetricCorrelation(b *testing.B) {
	f := load(b)
	var m map[core.MetricPair]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = f.ranger.CorrelationMatrix(store.AllMetrics())
	}
	b.StopTimer()
	b.ReportMetric(core.Correlation(m, store.MetricCPUUser, store.MetricCPUIdle), "corr_user_idle")
	b.ReportMetric(core.Correlation(m, store.MetricIBRx, store.MetricIBTx), "corr_ibrx_ibtx")
	picked := core.SelectIndependent(m, append(store.KeyMetrics(),
		store.MetricCPUUser, store.MetricIBRx, store.MetricCPUSys,
		store.MetricRead, store.MetricLnetTx), 0.98)
	b.ReportMetric(float64(len(picked)), "independent_set_size")
}

// BenchmarkCollectOverhead measures the §3 monitor cost: the time to
// take one full sample of a node (all collectors, all devices). The
// paper quotes ~0.1% overhead at a 10-minute cadence; the reported
// overhead_ppm metric is sample-time / 600 s.
func BenchmarkCollectOverhead(b *testing.B) {
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, "bench-node")
	snap.Time = 1306886400
	mon := taccstats.NewMonitor(snap, cc.Arch, func(day int) (io.WriteCloser, error) {
		return nopWriteCloser{io.Discard}, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Time += 600
		if err := mon.Sample(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perSampleSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perSampleSec/600*1e6, "overhead_ppm_of_interval")
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// BenchmarkRawVolume measures the §4.1 data volume: bytes per node per
// day of raw output (paper: ~0.5 MB/node/day, 60 GB/month for 3936
// nodes uncompressed).
func BenchmarkRawVolume(b *testing.B) {
	cc := cluster.RangerConfig()
	var bytesPerDay float64
	for i := 0; i < b.N; i++ {
		snap := procfs.NewNodeSnapshot(cc, "bench-node")
		snap.Time = 1306886400
		counter := &countingWriter{}
		mon := taccstats.NewMonitor(snap, cc.Arch, func(day int) (io.WriteCloser, error) {
			return counter, nil
		})
		for s := 0; s < 144; s++ { // one day at 10-minute cadence
			snap.Time += 600
			if err := mon.Sample(); err != nil {
				b.Fatal(err)
			}
		}
		mon.Close()
		bytesPerDay = float64(counter.n)
	}
	b.ReportMetric(bytesPerDay/1e6, "mb_per_node_day")
	b.ReportMetric(bytesPerDay*3936*30/1e9, "gb_per_month_full_ranger")
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func (c *countingWriter) Close() error { return nil }

// BenchmarkRenderAllFigures measures the full report-rendering path for
// every figure (the cmd/supremm hot path).
func BenchmarkRenderAllFigures(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := f.ranger.Persistence(10)
		if err != nil {
			b.Fatal(err)
		}
		w := io.Discard
		if err := report.Fig2(w, f.ranger, 5); err != nil {
			b.Fatal(err)
		}
		if err := report.Fig4(w, f.ranger); err != nil {
			b.Fatal(err)
		}
		if err := report.Table1(w, tab); err != nil {
			b.Fatal(err)
		}
		if err := report.Fig7(w, f.ranger); err != nil {
			b.Fatal(err)
		}
		if err := report.Fig10(w, f.ranger); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// ablationSeries runs a small simulation with modified app dynamics and
// returns its system series.
func ablationSeries(b *testing.B, mutate func(*workload.App)) []store.SystemSample {
	b.Helper()
	cc := cluster.RangerConfig().Scaled(48)
	apps := workload.DefaultApps()
	for _, a := range apps {
		mutate(a)
	}
	gen := workload.DefaultGenConfig(cc, 2013)
	gen.Apps = apps
	cfg := sim.DefaultConfig(cc, 2013)
	cfg.DurationMin = 21 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen = gen
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Series
}

// BenchmarkAblationWhiteNoise removes the AR(1) temporal correlation
// from every app (theta -> 0 keeps the noise but kills its memory).
// Expectation: short-offset persistence ratios rise sharply toward the
// decorrelated limit — the paper's Table 1 cannot be reproduced without
// within-job temporal correlation.
func BenchmarkAblationWhiteNoise(b *testing.B) {
	var base, ablated *core.PersistenceTable
	for i := 0; i < b.N; i++ {
		baseSeries := ablationSeries(b, func(a *workload.App) {})
		whiteSeries := ablationSeries(b, func(a *workload.App) { a.Dyn.Theta = 0.1 })
		base, _ = core.PersistenceFromSeries(baseSeries, 10)
		ablated, _ = core.PersistenceFromSeries(whiteSeries, 10)
	}
	b.ReportMetric(base.Ratios["cpu_flops"][0], "flops_ratio10_base")
	b.ReportMetric(ablated.Ratios["cpu_flops"][0], "flops_ratio10_whitenoise")
}

// BenchmarkAblationSteadyIO removes IO burstiness (checkpoint dumps
// become a constant trickle). Expectation: io_scratch_write loses its
// place as the least persistent metric, collapsing Table 1's ordering.
func BenchmarkAblationSteadyIO(b *testing.B) {
	var base, ablated *core.PersistenceTable
	for i := 0; i < b.N; i++ {
		baseSeries := ablationSeries(b, func(a *workload.App) {})
		steadySeries := ablationSeries(b, func(a *workload.App) {
			a.Dyn.IOBurst = workload.BurstSpec{}
		})
		base, _ = core.PersistenceFromSeries(baseSeries, 10)
		ablated, _ = core.PersistenceFromSeries(steadySeries, 10)
	}
	b.ReportMetric(base.Ratios["io_scratch_write"][0], "write_ratio10_bursty")
	b.ReportMetric(ablated.Ratios["io_scratch_write"][0], "write_ratio10_steady")
}

// BenchmarkAblationUnweighted compares node-hour-weighted fleet means
// (the paper's §4.1 weighting) against plain per-job means.
// Expectation: the two disagree visibly, because big long jobs differ
// from the typical small job.
func BenchmarkAblationUnweighted(b *testing.B) {
	f := load(b)
	var agg store.Agg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg = f.ranger.Store.Aggregate(store.MetricCPUIdle, f.ranger.JobFilter())
	}
	b.StopTimer()
	b.ReportMetric(agg.Mean*100, "weighted_idle_pct")
	b.ReportMetric(agg.UnweightedMean*100, "unweighted_idle_pct")
}

// BenchmarkStoreColumnarVsRows compares the columnar aggregation scan
// against a row-materializing scan over the same records.
func BenchmarkStoreColumnarVsRows(b *testing.B) {
	f := load(b)
	st := f.ranger.Store
	filter := f.ranger.JobFilter()
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.Aggregate(store.MetricCPUIdle, filter)
		}
	})
	b.Run("rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sw, swx float64
			for _, rec := range st.Records(filter) {
				w := rec.NodeHours()
				sw += w
				swx += w * rec.CPUIdleFrac
			}
			if sw > 0 {
				_ = swx / sw
			}
		}
	})
}

// BenchmarkSimulate measures the end-to-end simulation throughput the
// whole harness rests on (job-steps per second).
func BenchmarkSimulate(b *testing.B) {
	cc := cluster.RangerConfig().Scaled(32)
	b.ResetTimer()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(cc, int64(i))
		cfg.DurationMin = 7 * 24 * 60
		cfg.Shutdowns = nil
		var err error
		res, err = sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Store.Len()), "jobs")
}

# Convenience targets for the SUPReMM reproduction.
GO ?= go

.PHONY: all build test vet bench figures dashboard clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark pass: regenerates every table/figure headline metric.
bench:
	$(GO) test -bench=. -benchmem ./...

# Render every paper figure as text plus vector/HTML artifacts.
figures:
	$(GO) run ./cmd/supremm -days 30 -nodes 128 -svg out/figs -html out/dashboard.html | tee out/figures.txt

# The full-fidelity pipeline end to end into ./out/pipeline.
pipeline:
	$(GO) run ./cmd/simulate -cluster ranger -nodes 16 -days 3 -out out/pipeline -raw
	$(GO) run ./cmd/ingest -raw out/pipeline/raw -acct out/pipeline/accounting.log -out out/pipeline
	$(GO) run ./cmd/xdmod -data out/pipeline -report system

clean:
	rm -rf out

# Convenience targets for the SUPReMM reproduction.
GO ?= go

.PHONY: all build test test-race vet lint lint-fast fuzz-smoke test-faults test-chaos test-serve test-store test-shards test-scrub bench bench-ingest bench-serve bench-store figures dashboard clean

all: build vet lint test test-race test-chaos test-shards test-scrub

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants enforced by the nine-analyzer supremmlint
# suite — counter deltas, determinism, hot-path allocations, dropped
# writer errors, plus the flow-sensitive passes (lock release, snapshot
# immutability after publish, untrusted decode lengths, resource
# close-on-every-path) and the stale-allow sweep. The summary line
# prints the wall-clock the suite took; CI records it per push. See
# DESIGN.md "Static analysis" and "Flow-sensitive analysis".
lint:
	$(GO) run ./cmd/supremmlint ./...

# Fast pre-push loop: lint only the packages whose .go files changed
# since the origin/main merge base (committed or not). Falls back to
# the full suite when the merge base is unavailable (fresh clone, no
# origin remote). CI always runs the full `make lint`.
lint-fast:
	@base=$$(git merge-base origin/main HEAD 2>/dev/null); \
	if [ -z "$$base" ]; then \
		echo "lint-fast: no origin/main merge base, running full lint"; \
		$(GO) run ./cmd/supremmlint ./...; exit $$?; \
	fi; \
	dirs=""; \
	for d in $$(git diff --name-only $$base -- '*.go' | xargs -r -n1 dirname | sort -u); do \
		case $$d in *testdata*) continue ;; esac; \
		[ -d "$$d" ] && dirs="$$dirs ./$$d"; \
	done; \
	if [ -z "$$dirs" ]; then \
		echo "lint-fast: no Go packages changed since origin/main"; exit 0; \
	fi; \
	echo "lint-fast:$$dirs"; \
	$(GO) run ./cmd/supremmlint $$dirs

# Quick fuzz regression pass: replays the committed seed corpora plus a
# short budget of new inputs against the raw-format parsers, the
# columnar binary snapshot decoder, and the daemon's corrupt-snapshot
# reload path (served generation must never change on a failed decode).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseFile -fuzztime 10s ./internal/taccstats
	$(GO) test -run '^$$' -fuzz FuzzColumnsDecode -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzManifestDecode -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzReloadCorrupt -fuzztime 10s ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzQuarantineRecord -fuzztime 10s ./internal/store

# Fault-injection differential suite under the race detector: corrupted
# hosts quarantine, untouched jobs stay bit-identical, sequential and
# parallel ingest agree on the quality report (DESIGN.md section 9).
test-faults:
	$(GO) test -race -run 'Degrad|Fault|Flaky|Inject|Polic|Quarantine|Retr|Skew|Quality|Truncate' \
		./internal/faultinject ./internal/ingest ./cmd/ingest ./cmd/taccstatsd

# Serve-layer chaos/overload suite under the race detector: the seeded
# chaos soak (torn snapshots, reload storms, slow reads, slow clients),
# admission/breaker/drain behavior, deadline and panic middleware, and
# the atomic-output + goroutine-leak guards (DESIGN.md §13).
test-chaos:
	$(GO) test -race -run 'Chaos|Admission|Breaker|Shed|Drain|Deadline|Panic|Healthz|Atomic|AggregateParallelCtx' \
		./internal/serve ./cmd/supremmd ./cmd/ingest ./internal/store

# Query-daemon suite: race-detector HTTP tests (concurrent queries vs
# hot reload), the simulate→ingest→supremmd golden harness, the fuzz
# seed corpus replay, and the indexed-vs-scan speedup floor.
test-serve:
	$(GO) test -race ./internal/serve ./cmd/supremmd

# Columnar store suite under the race detector: row-vs-columnar
# bit-equivalence, the binary codec round-trip/rejection matrix, the
# fuzz seed replay, and the columnar speedup floor (DESIGN.md §11).
test-store:
	$(GO) test -race ./internal/store

# Shard-store suite under the race detector: the manifest codec reject
# matrix, the property-style shard/monolith differential equivalence,
# torn-shard and stale-manifest fault injection at the serve layer, the
# incremental-reload pointer-sharing + mid-reload bit-identity test,
# and the golden two-day incremental run (ISSUE 9, DESIGN.md §14).
test-shards:
	$(GO) test -race -run 'Shard|Manifest|Incremental|EpochDay|ServeChaos|IngestCommandEndToEnd' \
		./internal/store ./internal/serve ./internal/faultinject ./cmd/ingest

# Self-healing shard suite under the race detector: scrubber budget and
# sweep accounting, quarantine log round-trip/reject matrix, repair
# byte-identity against the manifest, degraded-vs-healthy differential
# serving, the coverage floor, ingest leftover cleanup, and the
# self-heal chaos acceptance proof (ISSUE 10, DESIGN.md §15).
test-scrub:
	$(GO) test -race -run 'Scrub|Quarantine|Repair|Degraded|Heal|Coverage|VerifyShard|CleansHealing|BitRot|Rot' \
		./internal/store ./internal/serve ./internal/faultinject ./cmd/ingest

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark pass: regenerates every table/figure headline metric.
bench:
	$(GO) test -bench=. -benchmem ./...

# Ingest hot-path benchmarks only (parse + raw ETL), recorded for the
# before/after table in EXPERIMENTS.md.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkParseFile|BenchmarkParseStream|BenchmarkIngestRaw' -benchmem \
		./internal/taccstats ./internal/ingest | tee BENCH_ingest.txt

# Query-daemon aggregation benchmarks: store scan vs indexed/sharded,
# HTTP cold vs cached; recorded in EXPERIMENTS.md. The indexed-vs-scan
# ratio backs the >=5x acceptance criterion.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeAggregate|BenchmarkStoreSelect' -benchmem \
		./internal/serve ./internal/store | tee BENCH_serve.txt

# Columnar store benchmarks: aggregation kernels vs the row path, the
# binary codec, the jsonl-vs-binary snapshot load, the incremental
# shard reload vs a full load, and the whole-shard time-prune win;
# recorded in EXPERIMENTS.md. The binary/jsonl load ratio backs the
# >=5x load, the columnar/row broad-scan ratio the >=2x, and the
# incremental/full reload ratio the >=5x reload acceptance criteria.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkAggregateColumnar|BenchmarkColumnsCodec|BenchmarkLoadRealm|BenchmarkIncrementalReload|BenchmarkShardPrune' -benchmem \
		./internal/store ./internal/serve | tee BENCH_store.txt

# Render every paper figure as text plus vector/HTML artifacts.
figures:
	$(GO) run ./cmd/supremm -days 30 -nodes 128 -svg out/figs -html out/dashboard.html | tee out/figures.txt

# The full-fidelity pipeline end to end into ./out/pipeline.
pipeline:
	$(GO) run ./cmd/simulate -cluster ranger -nodes 16 -days 3 -out out/pipeline -raw
	$(GO) run ./cmd/ingest -raw out/pipeline/raw -acct out/pipeline/accounting.log -out out/pipeline
	$(GO) run ./cmd/xdmod -data out/pipeline -report system

clean:
	rm -rf out

// Package supremm is a from-scratch Go reproduction of the SC13 paper
// "Enabling Comprehensive Data-Driven System Management for Large
// Computational Facilities" (Browne et al.): the TACC_Stats job-level
// resource monitor, its supporting tool chain (rationalized syslog,
// Lariat job summaries, SGE-style accounting), the ingest pipeline, and
// the XDMoD/SUPReMM analytics that the paper's tables and figures come
// from — all running against a simulated Ranger/Lonestar4-class cluster
// substrate.
//
// Layout:
//
//	internal/cluster    hardware model (Ranger and Lonestar4 presets)
//	internal/procfs     synthetic /proc//sys counter trees
//	internal/workload   synthetic users, applications and job behaviour
//	internal/sched      FIFO + EASY-backfill batch scheduler, accounting
//	internal/sim        discrete-event engine driving everything
//	internal/taccstats  the TACC_Stats monitor and raw text format
//	internal/eventlog   rationalized syslog
//	internal/lariat     per-job execution summaries
//	internal/ingest     ETL: raw files + accounting -> job records
//	internal/store      embedded columnar job store + system series
//	internal/core       the analytics realm (profiles, efficiency,
//	                    persistence, system reports)
//	internal/report     text/CSV/ASCII renderers for every figure
//	internal/anomaly    ANCOR-style anomaly detection and log linkage
//	cmd/...             supremm, simulate, ingest, xdmod, taccstatsd
//	examples/...        runnable walkthroughs
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper; see EXPERIMENTS.md for paper-vs-measured results.
package supremm

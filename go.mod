module supremm

go 1.22

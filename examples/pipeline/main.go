// Pipeline demonstrates the full-fidelity data path of the paper's
// Fig 1: run a cluster in raw mode (real TACC_Stats text files per node
// per day), then ingest those files by joining counter deltas with the
// accounting log, and verify the ETL output against the simulator's own
// records. It also exercises the rationalized syslog and the ANCOR-style
// anomaly linkage.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"supremm/internal/anomaly"
	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/eventlog"
	"supremm/internal/ingest"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func main() {
	rawDir, err := os.MkdirTemp("", "supremm-raw-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(rawDir)

	// 1. Simulate 12 Ranger nodes for 3 days in raw mode.
	cc := cluster.RangerConfig().Scaled(12)
	cfg := sim.DefaultConfig(cc, 99)
	cfg.DurationMin = 3 * 24 * 60
	cfg.Gen.UtilizationTarget = 2 // keep the little machine packed
	cfg.RawDir = rawDir
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d jobs, %.1f MB of raw TACC_Stats data (%d samples)\n",
		res.Store.Len(), float64(res.MonitorBytes)/1e6, res.MonitorSamples)
	// Per-node-per-day volume, the paper's 0.5 MB yardstick (§4.1).
	fmt.Printf("raw volume: %.2f MB per node per day (paper: ~0.5 MB on Ranger)\n",
		float64(res.MonitorBytes)/1e6/12/3)

	// Show a flavour of the raw format.
	hosts, _ := os.ReadDir(rawDir)
	if len(hosts) > 0 {
		days, _ := os.ReadDir(filepath.Join(rawDir, hosts[0].Name()))
		if len(days) > 0 {
			raw, _ := os.ReadFile(filepath.Join(rawDir, hosts[0].Name(), days[0].Name()))
			fmt.Printf("\nfirst lines of %s/%s:\n", hosts[0].Name(), days[0].Name())
			for i, line := 0, 0; i < len(raw) && line < 6; i++ {
				if raw[i] == '\n' {
					line++
				}
			}
			end := 0
			lines := 0
			for ; end < len(raw) && lines < 6; end++ {
				if raw[end] == '\n' {
					lines++
				}
			}
			fmt.Print(string(raw[:end]))
		}
	}

	// 2. Ingest the raw directory against the accounting log — the ETL
	//    stage the deployed system runs on the Netezza appliance.
	rr, err := ingest.IngestRaw(rawDir, res.Acct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ningested: %d job records, %d series samples, %d unattributed intervals\n",
		rr.Store.Len(), len(rr.Series), rr.Unattributed)

	// 3. Verify the ETL against the simulator's direct records.
	byID := map[int64]store.JobRecord{}
	for i := 0; i < res.Store.Len(); i++ {
		r := res.Store.Record(i)
		byID[r.JobID] = r
	}
	var worst float64
	compared := 0
	for i := 0; i < rr.Store.Len(); i++ {
		raw := rr.Store.Record(i)
		direct, ok := byID[raw.JobID]
		if !ok || direct.Samples < 12 {
			continue
		}
		if direct.CPUIdleFrac > 0 {
			relErr := math.Abs(raw.CPUIdleFrac-direct.CPUIdleFrac) / direct.CPUIdleFrac
			if relErr > worst {
				worst = relErr
			}
		}
		compared++
	}
	fmt.Printf("ETL check: %d jobs compared, worst cpu_idle relative error %.1f%%\n",
		compared, worst*100)

	// 4. The rationalized log + anomaly linkage (§4.3.4).
	crit := 0
	for _, ev := range res.Events {
		if ev.Severity >= eventlog.Error {
			crit++
		}
	}
	fmt.Printf("\nrationalized log: %d events (%d error+), e.g.:\n", len(res.Events), crit)
	for i, ev := range res.Events {
		if i >= 3 {
			break
		}
		fmt.Println(" ", ev.String())
	}
	realm := core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), rr.Store, rr.Series)
	found := anomaly.NewDetector().Detect(realm.Store, realm.JobFilter(),
		[]store.Metric{store.MetricCPUIdle, store.MetricMemUsedMax})
	diags := anomaly.Link(found, res.Events)
	fmt.Printf("\nANCOR linkage: %d anomalous jobs diagnosed\n", len(diags))
	for i, d := range diags {
		if i >= 3 {
			break
		}
		fmt.Println(" ", d.String())
	}
}

// Stakeholders renders the full §4.3 report catalogue: one suite per
// stakeholder class (users, application developers, support staff,
// systems administrators, resource managers, funding agencies), across
// both simulated clusters — the paper's central claim of "meeting the
// information needs of all stakeholders" in one run.
package main

import (
	"fmt"
	"log"
	"os"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/report"
	"supremm/internal/sim"
)

func buildRealm(cc cluster.Config) *core.Realm {
	cfg := sim.DefaultConfig(cc, 2013)
	cfg.DurationMin = 14 * 24 * 60
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
		cc.PeakTFlops(), res.Store, res.Series)
}

func main() {
	fmt.Fprintln(os.Stderr, "simulating two weeks on both clusters...")
	ranger := buildRealm(cluster.RangerConfig().Scaled(48))
	ls4 := buildRealm(cluster.Lonestar4Config().Scaled(48))

	for _, who := range report.Stakeholders() {
		if err := report.Suite(os.Stdout, who, ranger, ls4); err != nil {
			log.Fatalf("%s suite: %v", who, err)
		}
	}
	fmt.Println("\nAll six stakeholder suites rendered (paper sec 4.3.1-4.3.6).")
}

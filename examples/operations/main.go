// Operations demonstrates the forward-looking capabilities built on the
// paper's data: application-kernel audits (XDMoD's auditing half),
// persistence-based forecasting (the abstract's "limited predictive
// capability"), scheduling hints ("add high I/O jobs when I/O is
// relatively free", §4.3.4/§5), and queue-wait reporting across
// scheduling policies.
package main

import (
	"fmt"
	"log"

	"supremm/internal/appkernels"
	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/workload"
)

func main() {
	cc := cluster.RangerConfig().Scaled(32)
	cfg := sim.DefaultConfig(cc, 23)
	cfg.DurationMin = 21 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.HorizonMin = cfg.DurationMin

	// Inject the application-kernel audit suite into the production mix.
	kernels := appkernels.DefaultKernels(workload.DefaultApps())
	production := workload.NewGenerator(cfg.Gen).Generate()
	cfg.Jobs = appkernels.Inject(production, kernels, cfg.DurationMin, 1_000_000, 23)

	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	realm := core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
		cc.PeakTFlops(), res.Store, res.Series)

	// 1. Application-kernel audit: is the system performing as usual?
	fmt.Println("=== application kernel audit ===")
	for _, v := range appkernels.NewAuditor().AuditAll(res.Store, kernels) {
		state := "OK"
		if v.Degraded {
			state = "DEGRADED"
		}
		fmt.Printf("  %-12s %2d runs  baseline %6.1f GF/s  recent %6.1f GF/s  (%+.1f%%)  %s\n",
			v.Kernel, v.Runs, v.BaselineMean, v.RecentMean, v.DeltaPct, state)
	}

	// 2. Forecasting: how predictable is the system right now?
	fmt.Println("\n=== persistence forecasts (cpu_flops) ===")
	fc, err := realm.NewForecaster("cpu_flops", 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, off := range []float64{10, 100, 1000} {
		ev, err := fc.Evaluate(res.Series, off)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.0f min ahead: MAE %.3f TF vs climatology %.3f TF (skill %+.2f)\n",
			off, ev.MAE, ev.NaiveMAE, ev.Skill)
	}

	// 3. Scheduling hints: where is the headroom in the next hour?
	fmt.Println("\n=== scheduling hints (60 min ahead) ===")
	for _, metric := range []string{"io_scratch_write", "net_ib_tx"} {
		h, err := realm.Hint(metric, 60)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "hold back"
		if h.Favorable {
			verdict = "good time to launch"
		}
		fmt.Printf("  %-18s now %8.1f  forecast %8.1f  typical %8.1f  headroom %+5.1f%%  -> %s heavy users of it\n",
			h.Metric, h.Current, h.ForecastMean, h.FleetMean, h.Headroom*100, verdict)
	}

	// 4. Queue health by policy (the scheduler-tuning report, §4.3.4).
	fmt.Println("\n=== queue waits under each scheduling policy ===")
	for _, p := range []sched.Policy{sched.PolicyFIFO, sched.PolicyEASY, sched.PolicyComplementary} {
		pcfg := cfg
		pcfg.Jobs = nil // regenerate the same stream per run
		pcfg.Policy = p
		pres, err := sim.Run(pcfg)
		if err != nil {
			log.Fatal(err)
		}
		ws := sched.ComputeWaitStats(pres.Acct)
		var busy float64
		for _, s := range pres.Series {
			busy += float64(s.BusyNodes)
		}
		util := busy / float64(len(pres.Series)) / 32 * 100
		fmt.Printf("  %-14s util %5.1f%%  mean wait %6.1f min  (small %5.1f / medium %5.1f / large %6.1f)\n",
			p, util, ws.MeanWaitMin, ws.SmallMeanMin, ws.MediumMeanMin, ws.LargeMeanMin)
	}
}

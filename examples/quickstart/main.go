// Quickstart: simulate a small Ranger-like cluster for a week, build an
// analytics realm, and print the headline numbers every stakeholder
// report builds on — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/report"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func main() {
	// 1. Describe the machine: a 32-node slice of Ranger (same 16-core
	//    32 GB nodes, Lustre mounts and InfiniBand as the real system).
	cc := cluster.RangerConfig().Scaled(32)

	// 2. Run a week of synthetic production: jobs are generated from a
	//    200-user population over an application catalogue patterned on
	//    the TACC mix, scheduled with EASY backfill, and measured every
	//    10 minutes exactly as TACC_Stats would.
	cfg := sim.DefaultConfig(cc, 7)
	cfg.DurationMin = 7 * 24 * 60
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d jobs (%d completed), %d monitor intervals, %d log events\n\n",
		res.JobsSubmitted, res.JobsCompleted, len(res.Series), len(res.Events))

	// 3. Build the analytics realm (the XDMoD view of the data).
	realm := core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
		cc.PeakTFlops(), res.Store, res.Series)

	// 4. Ask it questions.
	fmt.Printf("jobs analyzed (longer than one sampling interval): %d\n", realm.JobCount())
	fmt.Printf("node-hours consumed: %.0f\n", realm.TotalNodeHours())
	fmt.Printf("fleet efficiency (1 - weighted cpu idle): %.1f%%\n", realm.FleetEfficiency()*100)

	flops := realm.FlopsReport()
	fmt.Printf("delivered FLOPS: mean %.2f TF of %.0f TF peak (%.1f%%)\n",
		flops.MeanTFlops, flops.MachinePeakTF, flops.MeanFraction*100)

	mem := realm.MemoryReport()
	fmt.Printf("memory per node: mean %.1f GB of %.0f GB (%.0f%%)\n\n",
		mem.MeanGB, mem.CapacityGB, mem.MeanFraction*100)

	// 5. Render one real report: the heaviest user's normalized profile
	//    (a Fig 2 radar chart in text form).
	heavy := realm.TopUserProfiles(1)[0]
	if err := report.Radar(os.Stdout, heavy); err != nil {
		log.Fatal(err)
	}

	// 6. The same store answers ad-hoc queries directly.
	agg := realm.Store.Aggregate(store.MetricCPUIdle, store.Filter{App: "amber", MinSamples: 1})
	fmt.Printf("\nAMBER jobs: %d, node-hour-weighted idle %.1f%%\n", agg.N, agg.Mean*100)
}

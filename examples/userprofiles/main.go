// Userprofiles reproduces the support-staff workflow of §4.3.1/§4.3.3:
// profile the heavy users (Fig 2), find the inefficient outliers
// (Fig 4's circled users), inspect their profile (Fig 5), and check the
// Lariat record that explains *why* they idle (undersubscribed ranks).
package main

import (
	"fmt"
	"log"
	"os"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/lariat"
	"supremm/internal/report"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func main() {
	cc := cluster.RangerConfig().Scaled(64)
	cfg := sim.DefaultConfig(cc, 11)
	cfg.DurationMin = 21 * 24 * 60
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	realm := core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
		cc.PeakTFlops(), res.Store, res.Series)

	// Fig 2: the five heaviest users, normalized to the fleet mean.
	fmt.Println("=== the five heaviest users (Fig 2) ===")
	for _, p := range realm.TopUserProfiles(5) {
		if err := report.Radar(os.Stdout, p); err != nil {
			log.Fatal(err)
		}
	}

	// Fig 4: who is wasting node-hours?
	eff := realm.FleetEfficiency()
	fmt.Printf("\n=== efficiency (Fig 4): fleet %.0f%% ===\n", eff*100)
	worst := realm.WorstUsers(3, 50)
	for _, u := range worst {
		fmt.Printf("  %s: %.0f node-hours, %.0f wasted (%.0f%% idle, %d jobs)\n",
			u.User, u.NodeHours, u.WastedNodeHours, u.IdleFrac*100, u.Jobs)
	}
	if len(worst) == 0 {
		return
	}

	// Fig 5: the circled user's profile — high idle, everything else
	// unremarkable.
	fmt.Println("\n=== the circled user (Fig 5) ===")
	if err := report.Radar(os.Stdout, realm.UserProfile(worst[0].User)); err != nil {
		log.Fatal(err)
	}

	// The Lariat evidence: their jobs run far fewer MPI ranks than the
	// nodes have cores.
	byJob := lariat.ByJob(res.Lariat)
	fmt.Println("\n=== Lariat records for that user's jobs ===")
	shown := 0
	for _, rec := range realm.Store.Records(store.Filter{User: worst[0].User, MinSamples: 1}) {
		lr, ok := byJob[rec.JobID]
		if !ok {
			continue
		}
		fmt.Printf("  job %d: exe %s, %d ranks on %d nodes (%d cores available)\n",
			rec.JobID, lr.Executable, lr.MPIRanks, rec.Nodes, rec.Nodes*cc.CoresPerNode())
		shown++
		if shown >= 5 {
			break
		}
	}
}

// Appcompare reproduces the application-developer analysis of §4.3.2
// (Fig 3): profile the three molecular-dynamics codes on both clusters,
// quantify which are efficient where, and measure cross-cluster profile
// similarity — the evidence behind the paper's recommendation that
// centers steer users toward NAMD and match codes to architectures.
package main

import (
	"fmt"
	"log"
	"os"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/report"
	"supremm/internal/sim"
	"supremm/internal/store"
)

func buildRealm(cc cluster.Config, seed int64) *core.Realm {
	cfg := sim.DefaultConfig(cc, seed)
	cfg.DurationMin = 21 * 24 * 60
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB,
		cc.PeakTFlops(), res.Store, res.Series)
}

func main() {
	mdCodes := []string{"namd", "amber", "gromacs"}
	ranger := buildRealm(cluster.RangerConfig().Scaled(64), 3)
	ls4 := buildRealm(cluster.Lonestar4Config().Scaled(64), 3)

	// Fig 3: the six radar charts (3 codes x 2 clusters).
	if err := report.Fig3(os.Stdout, []*core.Realm{ranger, ls4}, mdCodes); err != nil {
		log.Fatal(err)
	}

	// The paper's reading of the charts, computed:
	fmt.Println("\n=== efficiency by code (cpu idle, normalized to fleet) ===")
	for _, r := range []*core.Realm{ranger, ls4} {
		for _, code := range mdCodes {
			p := r.AppProfile(code)
			fmt.Printf("  %-10s on %-10s idle %.2fx fleet  (%d jobs, %.0f node-hours)\n",
				code, r.Cluster, p.Normalized[store.MetricCPUIdle], p.N, p.NodeHours)
		}
	}

	fmt.Println("\n=== cross-cluster profile distance (lower = more similar) ===")
	for _, code := range mdCodes {
		d := core.ProfileDistance(ranger.AppProfile(code), ls4.AppProfile(code))
		fmt.Printf("  %-10s %.3f\n", code, d)
	}
	fmt.Println("\nThe paper's observations to check: AMBER idles more than NAMD")
	fmt.Println("and GROMACS on both machines; NAMD's profile is nearly the same")
	fmt.Println("on both clusters while GROMACS differs (it exploits Westmere).")
}
